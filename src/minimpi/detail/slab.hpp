// The eager-path slab recycler: a pool of transport buffers in
// power-of-two size classes, with per-rank free lists (touched only by
// the owning rank thread, no lock) and one bounded shared depot that
// rebalances slabs between ranks in batches.
//
// Why it exists: every eager message that lands unexpected needs an owned
// payload copy. The seed transport heap-allocated a fresh
// std::vector<std::byte> per message — exactly the per-call
// allocation+copy overhead the paper's buffering layer removes on the
// Java side (and Ibdxnet removes for IB messaging). In steady state the
// recycler serves every eager send from a free list: zero allocations per
// message.
//
// Multi-tenant sharing (src/jhpcd): the depot is a separate object so a
// fleet of Universes can share ONE depot — a job that finishes donates
// its warm slabs to whichever tenant runs next, and the depot's byte
// ceiling is the fleet-wide memory bound the jhpcd scheduler audits.
// Per-rank lists stay strictly per-Universe (they are touched locklessly
// by that Universe's rank threads); only the mutexed depot is shared, so
// tenant isolation is untouched.
//
// Concurrency contract: acquire(rank)/release(rank) must be called from
// rank `rank`'s thread (the sender acquires with its own rank, the
// receiver releases with its own rank). Per-rank lists are therefore
// single-threaded; only the depot takes a mutex, and only in batches of
// kTransferBatch, so a one-way stream pays the lock ~1/16 messages.
// Stats counters are relaxed atomics and may be read from any thread.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail {

/// Owning handle on one slab of transport-buffer storage. Destroying a
/// Slab frees it outright (teardown with messages still parked); the
/// normal fate is SlabPool::release() back onto a free list.
class Slab {
 public:
  Slab() = default;
  Slab(Slab&& o) noexcept : p_(o.p_), cls_(o.cls_) { o.p_ = nullptr; }
  Slab& operator=(Slab&& o) noexcept {
    if (this != &o) {
      delete[] p_;
      p_ = o.p_;
      cls_ = o.cls_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~Slab() { delete[] p_; }
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  std::byte* data() const { return p_; }
  bool empty() const { return p_ == nullptr; }

 private:
  friend class SlabPool;
  Slab(std::byte* p, std::uint32_t cls) : p_(p), cls_(cls) {}

  std::byte* p_ = nullptr;
  std::uint32_t cls_ = 0;  // size-class index (capacity = kMinBytes << cls_)
};

/// The mutexed rebalancing tier of the recycler: bounded per-class lists
/// plus byte accounting. One SlabDepot may back several SlabPools (a
/// jhpcd fleet); with `max_bytes` set it refuses to retain past the
/// ceiling, so however many tenants share it, depot-resident memory is
/// hard-bounded — excess releases are freed outright, never queued.
class SlabDepot {
 public:
  /// Smallest slab handed out; requests round up to kMinBytes << k.
  static constexpr std::size_t kMinBytes = 64;
  /// Distinct size classes (64 B .. 2 GiB); larger requests are served
  /// unpooled (allocate on acquire, free on release).
  static constexpr std::uint32_t kClasses = 26;
  /// Retention cap per class (slab count), independent of the ceiling.
  static constexpr std::size_t kClassCap = 256;

  explicit SlabDepot(
      std::size_t max_bytes = std::numeric_limits<std::size_t>::max())
      : max_bytes_(max_bytes) {}

  SlabDepot(const SlabDepot&) = delete;
  SlabDepot& operator=(const SlabDepot&) = delete;

  ~SlabDepot() {
    for (auto& list : lists_)
      for (std::byte* p : list) delete[] p;
  }

  static std::size_t capacity_of(std::uint32_t cls) {
    return kMinBytes << cls;
  }

  /// Size-class index for a payload of `bytes` (>= kClasses: unpooled).
  static std::uint32_t class_of(std::size_t bytes) {
    JHPC_REQUIRE(bytes <= (std::numeric_limits<std::size_t>::max() >> 1) + 1,
                 "slab request too large");
    const std::size_t cap = std::bit_ceil(std::max(bytes, kMinBytes));
    return static_cast<std::uint32_t>(std::countr_zero(cap) -
                                      std::countr_zero(kMinBytes));
  }

  /// Move up to `max_n` slabs of `cls` onto the back of `out`. One lock
  /// per batch, not per message. Returns the number taken.
  std::size_t take(std::uint32_t cls, std::size_t max_n,
                   std::vector<std::byte*>& out) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& d = lists_[cls];
    const std::size_t n = std::min(max_n, d.size());
    if (n == 0) return 0;
    out.insert(out.end(), d.end() - static_cast<std::ptrdiff_t>(n), d.end());
    d.resize(d.size() - n);
    retained_.fetch_sub(n * capacity_of(cls), std::memory_order_relaxed);
    return n;
  }

  /// Accept up to `max_n` slabs of `cls` from the back of `list`,
  /// bounded by the per-class cap AND the byte ceiling; accepted slabs
  /// are removed from `list`. Returns the number accepted (0 = full; the
  /// caller frees what the depot refused).
  std::size_t put(std::uint32_t cls, std::vector<std::byte*>& list,
                  std::size_t max_n) {
    const std::size_t cap_bytes = capacity_of(cls);
    std::lock_guard<std::mutex> lk(mu_);
    auto& d = lists_[cls];
    if (d.size() >= kClassCap) return 0;
    std::size_t n = std::min({max_n, list.size(), kClassCap - d.size()});
    const std::size_t held = retained_.load(std::memory_order_relaxed);
    if (held >= max_bytes_) return 0;
    n = std::min(n, (max_bytes_ - held) / cap_bytes);
    if (n == 0) return 0;
    d.insert(d.end(), list.end() - static_cast<std::ptrdiff_t>(n),
             list.end());
    list.resize(list.size() - n);
    const std::size_t now =
        retained_.fetch_add(n * cap_bytes, std::memory_order_relaxed) +
        n * cap_bytes;
    std::size_t h = hwm_.load(std::memory_order_relaxed);
    while (now > h &&
           !hwm_.compare_exchange_weak(h, now, std::memory_order_relaxed)) {
    }
    return n;
  }

  /// Free every retained slab (fleet shed-load, teardown). Returns the
  /// bytes released back to the allocator.
  std::size_t trim() {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t freed = 0;
    for (std::uint32_t cls = 0; cls < kClasses; ++cls) {
      auto& d = lists_[cls];
      freed += d.size() * capacity_of(cls);
      for (std::byte* p : d) delete[] p;
      d.clear();
    }
    retained_.fetch_sub(freed, std::memory_order_relaxed);
    return freed;
  }

  /// Bytes currently parked in the depot (gauge, relaxed).
  std::size_t retained_bytes() const {
    return retained_.load(std::memory_order_relaxed);
  }
  /// High-water mark of retained_bytes() over the depot's lifetime.
  std::size_t hwm_bytes() const {
    return hwm_.load(std::memory_order_relaxed);
  }
  /// The retention ceiling (SIZE_MAX = uncapped private depot).
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  std::mutex mu_;
  std::array<std::vector<std::byte*>, kClasses> lists_;
  std::atomic<std::size_t> retained_{0};
  std::atomic<std::size_t> hwm_{0};
  std::size_t max_bytes_;
};

/// Per-Universe recycler of eager payload slabs. The per-rank tier is
/// private to this Universe; the depot tier is either private (default)
/// or a fleet-shared SlabDepot handed in at construction.
class SlabPool {
 public:
  static constexpr std::size_t kMinBytes = SlabDepot::kMinBytes;
  static constexpr std::uint32_t kClasses = SlabDepot::kClasses;
  /// Per-rank retention: at most this many slabs per class, and at most
  /// kPerRankCapBytes of storage per class (big classes keep fewer).
  static constexpr std::size_t kPerRankCap = 32;
  static constexpr std::size_t kPerRankCapBytes = 256 * 1024;
  /// Shared-depot retention cap per class.
  static constexpr std::size_t kDepotCap = SlabDepot::kClassCap;
  /// Slabs moved per depot round trip (amortizes the depot lock).
  static constexpr std::size_t kTransferBatch = 16;

  struct Stats {
    std::uint64_t hits = 0;        ///< acquires served without allocating
    std::uint64_t misses = 0;      ///< acquires that heap-allocated
    std::uint64_t recycled = 0;    ///< releases retained on a free list
    std::uint64_t recycled_bytes = 0;  ///< capacity bytes of those slabs
    std::uint64_t overflow_drops = 0;  ///< releases freed past every cap
    /// Bytes currently parked in THIS pool's per-rank lists (gauge; the
    /// depot's share is SlabDepot::retained_bytes()).
    std::uint64_t retained_bytes = 0;
  };

  explicit SlabPool(int ranks, std::shared_ptr<SlabDepot> depot = nullptr)
      : per_rank_(static_cast<std::size_t>(ranks)),
        depot_(depot != nullptr ? std::move(depot)
                                : std::make_shared<SlabDepot>()) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (PerRank& pr : per_rank_)
      for (auto& list : pr.free)
        for (std::byte* p : list) delete[] p;
  }

  /// The depot this pool spills to / refills from (possibly shared with
  /// other pools of a jhpcd fleet).
  SlabDepot& depot() { return *depot_; }
  const SlabDepot& depot() const { return *depot_; }

  /// A slab with capacity >= bytes, recycled when possible. `hit` (may be
  /// null) reports whether the free lists served it. Must run on rank
  /// `rank`'s thread. bytes == 0 yields an empty slab (no storage).
  Slab acquire(std::size_t bytes, int rank, bool* hit = nullptr) {
    if (bytes == 0) {
      if (hit != nullptr) *hit = true;
      return Slab{};
    }
    const std::uint32_t cls = class_of(bytes);
    if (cls >= kClasses) {  // beyond every pooled class: one-shot slab
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = false;
      return Slab{new std::byte[bytes], cls};
    }
    auto& list = per_rank_[static_cast<std::size_t>(rank)].free[cls];
    if (list.empty()) {
      const std::size_t took = depot_->take(cls, kTransferBatch, list);
      if (took > 0) {
        stats_.list_bytes.fetch_add(took * capacity_of(cls),
                                    std::memory_order_relaxed);
      }
    }
    if (!list.empty()) {
      std::byte* p = list.back();
      list.pop_back();
      stats_.list_bytes.fetch_sub(capacity_of(cls),
                                  std::memory_order_relaxed);
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = true;
      return Slab{p, cls};
    }
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    if (hit != nullptr) *hit = false;
    return Slab{new std::byte[capacity_of(cls)], cls};
  }

  enum class Released { kRecycled, kDropped };

  /// Return a slab to the free lists (or free it past the caps). Must run
  /// on rank `rank`'s thread. Empty slabs are a no-op (kRecycled).
  Released release(Slab&& slab, int rank) {
    std::byte* p = slab.p_;
    if (p == nullptr) return Released::kRecycled;
    const std::uint32_t cls = slab.cls_;
    slab.p_ = nullptr;
    if (cls >= kClasses) {  // unpooled one-shot slab
      delete[] p;
      stats_.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      return Released::kDropped;
    }
    auto& list = per_rank_[static_cast<std::size_t>(rank)].free[cls];
    if (list.size() >= per_rank_cap(cls) && !spill_to_depot(list, cls)) {
      delete[] p;
      stats_.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      return Released::kDropped;
    }
    list.push_back(p);
    stats_.list_bytes.fetch_add(capacity_of(cls), std::memory_order_relaxed);
    stats_.recycled.fetch_add(1, std::memory_order_relaxed);
    stats_.recycled_bytes.fetch_add(capacity_of(cls),
                                    std::memory_order_relaxed);
    return Released::kRecycled;
  }

  /// Relaxed snapshot; exact once the mutating threads are quiescent (or,
  /// per counter, once its owning paths synchronized with the reader).
  Stats stats() const {
    Stats s;
    s.hits = stats_.hits.load(std::memory_order_relaxed);
    s.misses = stats_.misses.load(std::memory_order_relaxed);
    s.recycled = stats_.recycled.load(std::memory_order_relaxed);
    s.recycled_bytes =
        stats_.recycled_bytes.load(std::memory_order_relaxed);
    s.overflow_drops =
        stats_.overflow_drops.load(std::memory_order_relaxed);
    s.retained_bytes = stats_.list_bytes.load(std::memory_order_relaxed);
    return s;
  }

  /// Zero the flow counters (new job on a reused Universe; free lists
  /// keep their slabs, so a warm pool stays warm across runs). The
  /// retained-bytes gauge is NOT reset: it tracks live storage, which
  /// survives the job boundary by design.
  void reset_stats() {
    stats_.hits.store(0, std::memory_order_relaxed);
    stats_.misses.store(0, std::memory_order_relaxed);
    stats_.recycled.store(0, std::memory_order_relaxed);
    stats_.recycled_bytes.store(0, std::memory_order_relaxed);
    stats_.overflow_drops.store(0, std::memory_order_relaxed);
  }

  static std::size_t capacity_of(std::uint32_t cls) {
    return SlabDepot::capacity_of(cls);
  }

  /// Size-class index for a payload of `bytes` (>= kClasses: unpooled).
  static std::uint32_t class_of(std::size_t bytes) {
    return SlabDepot::class_of(bytes);
  }

  /// Per-rank retention cap for one class (bytes-aware: big classes keep
  /// fewer slabs so a 64-rank job cannot pin hundreds of MB).
  static std::size_t per_rank_cap(std::uint32_t cls) {
    const std::size_t by_bytes = kPerRankCapBytes / capacity_of(cls);
    return std::max<std::size_t>(2, std::min(kPerRankCap, by_bytes));
  }

 private:
  struct alignas(64) PerRank {  // padded: no false sharing between ranks
    std::array<std::vector<std::byte*>, kClasses> free;
  };

  /// Move half a full per-rank list into the depot; false when the depot
  /// is full too (the caller drops its slab).
  bool spill_to_depot(std::vector<std::byte*>& list, std::uint32_t cls) {
    const std::size_t moved =
        depot_->put(cls, list, std::min(kTransferBatch, list.size()));
    if (moved == 0) return false;
    stats_.list_bytes.fetch_sub(moved * capacity_of(cls),
                                std::memory_order_relaxed);
    return true;
  }

  std::vector<PerRank> per_rank_;
  std::shared_ptr<SlabDepot> depot_;

  struct {
    std::atomic<std::uint64_t> hits{0}, misses{0}, recycled{0};
    std::atomic<std::uint64_t> recycled_bytes{0}, overflow_drops{0};
    std::atomic<std::uint64_t> list_bytes{0};
  } stats_;
};

}  // namespace jhpc::minimpi::detail
