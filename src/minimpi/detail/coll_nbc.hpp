// Schedule-based nonblocking collectives.
//
// Each i-collective compiles, at call time, into a per-rank DAG of
// rounds: the communication steps of a round are posted together (recvs
// first), completed together, and only then do the round's local steps
// (reductions, staging copies) run and the next round post. The shapes
// mirror the mv2 suite: dissemination ibarrier, binomial ibcast/ireduce,
// recursive-doubling iallreduce (with the non-power-of-two fold),
// ring iallgather, pairwise ialltoall; igather/iscatter use the flat
// fan-in/fan-out schedule (one round, maximal post-time overlap).
//
// Progress model (MPI weak progress): the transport is push-based — a
// posted receive is completed by the sender's deliver() and an eager
// send completes locally — so a schedule needs no progress thread. It
// advances whenever its rank enters wait()/test() on ANY nonblocking-
// collective request (all of the rank's active schedules are driven
// together, so out-of-order waits across ranks cannot starve each
// other). Compute between the initiation and the wait genuinely
// overlaps: round 0 is posted at initiation and peer deliveries land in
// parallel virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "detail/transport.hpp"
#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/group.hpp"
#include "jhpc/minimpi/op.hpp"

namespace jhpc::minimpi::detail {

// Tag block for the schedule engine: above the blocking CollTag block,
// still inside the reserved (>= kTagBase) space. Each operation instance
// takes one tag from a per-(rank, context) sequence counter — ranks agree
// because collectives are initiated in the same order per communicator —
// so concurrent operations on one communicator can never cross-match.
// Within one operation, MPI's per-(src, comm) non-overtaking order keeps
// the rounds apart (exactly what the blocking ring algorithms rely on).
inline constexpr int kTagNbcBase = (1 << 28) + (1 << 12);
inline constexpr int kNbcTagSpan = 1 << 20;

enum class NbcStepKind : std::uint8_t { kSend, kRecv, kReduce, kCopy };

/// Which buffer a step's offset addresses.
enum class NbcBuf : std::uint8_t { kUserIn, kUserOut, kScratch };

struct NbcStep {
  NbcStepKind kind = NbcStepKind::kCopy;
  int peer = -1;  ///< comm rank (send/recv only)
  NbcBuf src = NbcBuf::kUserOut;
  std::size_t src_off = 0;  ///< send payload / reduce input / copy source
  NbcBuf dst = NbcBuf::kUserOut;
  std::size_t dst_off = 0;  ///< recv target / reduce accumulator / copy dest
  std::size_t bytes = 0;    ///< payload bytes (send/recv/copy)
  std::size_t count = 0;    ///< elements (reduce)
};

/// One round: `comm` steps are posted together and must all complete
/// before the `local` steps run, in order, and the next round posts.
struct NbcRound {
  std::vector<NbcStep> comm;
  std::vector<NbcStep> local;
};

/// The whole in-flight operation; shared between the user's Request
/// handle and the owning rank's active-schedule registry. Only the
/// owning rank thread ever touches it.
struct NbcState {
  UniverseImpl* impl = nullptr;
  Group group;
  int my_rank = -1;
  int context_id = 0;
  int tag = 0;
  CollAlg alg = CollAlg::kNbcBarrier;

  const std::byte* user_in = nullptr;
  std::byte* user_out = nullptr;
  BasicKind kind = BasicKind::kByte;  ///< element kind of reduce steps
  ReduceOp op = ReduceOp::kSum;
  std::vector<std::byte> scratch;

  // Typed (derived-datatype) staging: for a schedule started through
  // nbc_start_typed, user_in/user_out point into these packed copies for
  // the schedule's lifetime; on completion the dense result is scattered
  // into `unpack_dst` through `unpack_dt` (see finish_typed).
  std::vector<std::byte> typed_in;
  std::vector<std::byte> typed_out;
  std::optional<Datatype> unpack_dt;
  int unpack_count = 0;
  void* unpack_dst = nullptr;

  std::vector<NbcRound> rounds;
  std::size_t round = 0;  ///< index of the round being progressed
  bool posted = false;    ///< current round's comm steps are in flight
  /// Virtual time the current round was posted (hist.nbc_round sample).
  std::int64_t round_start_v = 0;
  std::vector<std::shared_ptr<RequestState>> pending;
  bool done = false;
  /// A round failed (rank death, revocation, timeout): the schedule is
  /// poisoned — no further round posts — and every wait/test on it
  /// rethrows `failure`. Set with done so the progress set prunes it.
  bool failed = false;
  std::exception_ptr failure;
};

/// The operations the engine can compile.
enum class NbcOp {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAllgather,
  kAlltoall,
};

/// Compile the schedule, register it with the rank's progress set, post
/// round 0 (and any rounds that complete immediately). `size` is bytes
/// for the byte-oriented operations and the element count for
/// reduce/allreduce; `kind`/`op`/`root` are ignored where meaningless.
std::shared_ptr<NbcState> nbc_start(UniverseImpl* impl, const Group& group,
                                    int my_rank, int context_id, NbcOp what,
                                    const void* send_buf, void* recv_buf,
                                    std::size_t size, BasicKind kind,
                                    ReduceOp op, int root);

/// Typed nbc_start: packs the (possibly strided) send-side payload into
/// schedule-owned staging at initiation — so, unlike the byte forms, the
/// send buffer may be reused as soon as the call returns — runs the byte
/// schedule unchanged (all engines stay bit-identical), and scatters the
/// dense result into the user's strided receive buffer when the schedule
/// completes. `op` is meaningful for reduce/allreduce only, which also
/// require type.uniform_leaf().
std::shared_ptr<NbcState> nbc_start_typed(UniverseImpl* impl,
                                          const Group& group, int my_rank,
                                          int context_id, NbcOp what,
                                          const void* send_buf,
                                          void* recv_buf, int count,
                                          const Datatype& type, ReduceOp op,
                                          int root);

/// Drive every active schedule of `world_rank` as far as it can go
/// without blocking; prune the finished ones. Must run on the rank's
/// own thread.
void nbc_progress_rank(UniverseImpl& impl, int world_rank);

/// Block until `st` completes, progressing all of the rank's schedules
/// meanwhile. Returns the (empty) collective Status.
Status nbc_wait(NbcState& st);

/// Non-blocking completion check; progresses the rank's schedules.
bool nbc_test(NbcState& st, Status* out);

}  // namespace jhpc::minimpi::detail
