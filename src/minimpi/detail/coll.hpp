// Internal collective-algorithm implementations.
//
// Two suites model the two native libraries of the paper's evaluation:
//   mv2   — tuned algorithms in the style of MVAPICH2/MPICH: binomial
//           trees, scatter+ring-allgather broadcast, recursive doubling,
//           ring reduce-scatter/allgather, dissemination barrier,
//           pairwise alltoall.
//   basic — flat linear algorithms in the style of an untuned baseline:
//           root-sequential fan-out/fan-in everywhere.
//
// All algorithms are built strictly on the public Comm point-to-point API.
#pragma once

#include <cstddef>
#include <span>

#include "jhpc/minimpi/comm.hpp"

namespace jhpc::minimpi::detail {

// Reserved tag space for collectives (user tags are < 2^28). The
// reservation is enforced: Comm::send/recv & co. reject tags >= kTagBase
// unless the calling thread is inside an InternalTagScope.
inline constexpr int kTagBase = 1 << 28;

/// RAII: marks the current thread as running inside collective (or other
/// internal) code, so the reserved tag space passes the user-tag checks.
/// Nestable; collectives run entirely on the calling rank's thread, so a
/// thread-local depth is exactly the right scope.
class InternalTagScope {
 public:
  InternalTagScope();
  ~InternalTagScope();
  InternalTagScope(const InternalTagScope&) = delete;
  InternalTagScope& operator=(const InternalTagScope&) = delete;
};

/// True while the calling thread holds at least one InternalTagScope.
bool internal_tags_allowed();

enum CollTag : int {
  kTagBarrier = kTagBase,
  kTagBcast,
  kTagBcastScatter,
  kTagBcastRing,
  kTagReduce,
  kTagAllreduce,
  kTagAllreduceRs,
  kTagAllreduceAg,
  kTagGather,
  kTagScatter,
  kTagAllgather,
  kTagAlltoall,
  kTagGatherv,
  kTagScatterv,
  kTagAllgatherv,
  kTagAlltoallv,
  kTagReduceScatter,
  kTagScan,
  kTagCommMgmt,
  // hier suite: inter-node traffic among node leaders (coll_hier.cpp).
  kTagHierBarrier,
  kTagHierBcast,
  kTagHierReduce,
  kTagHierAllreduce,
  kTagHierGather,
  kTagHierRootXfer,
  // One-sided sync tokens (win.cpp): window `w` uses kTagWinSync + 2*w
  // for post->start tokens and kTagWinSync + 2*w + 1 for
  // complete->wait tokens. MUST stay the last entry: the window id
  // scales the offset open-endedly.
  kTagWinSync,
};

namespace mv2 {
void barrier(const Comm& c);
void bcast(const Comm& c, void* buf, std::size_t bytes, int root);
void reduce(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
            BasicKind kind, ReduceOp op, int root);
void allreduce(const Comm& c, const void* sbuf, void* rbuf,
               std::size_t count, BasicKind kind, ReduceOp op);
void reduce_scatter_block(const Comm& c, const void* sbuf, void* rbuf,
                          std::size_t count_per_rank, BasicKind kind,
                          ReduceOp op);
void scan(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
          BasicKind kind, ReduceOp op);
void gather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
            int root);
void scatter(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
             int root);
void allgather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf);
void alltoall(const Comm& c, const void* sbuf, std::size_t bpp, void* rbuf);
void allgatherv(const Comm& c, const void* sbuf, std::size_t sbytes,
                void* rbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs);
void alltoallv(const Comm& c, const void* sbuf,
               std::span<const std::size_t> scounts,
               std::span<const std::size_t> sdispls, void* rbuf,
               std::span<const std::size_t> rcounts,
               std::span<const std::size_t> rdispls);
}  // namespace mv2

namespace basic {
void barrier(const Comm& c);
void bcast(const Comm& c, void* buf, std::size_t bytes, int root);
void reduce(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
            BasicKind kind, ReduceOp op, int root);
void allreduce(const Comm& c, const void* sbuf, void* rbuf,
               std::size_t count, BasicKind kind, ReduceOp op);
void reduce_scatter_block(const Comm& c, const void* sbuf, void* rbuf,
                          std::size_t count_per_rank, BasicKind kind,
                          ReduceOp op);
void scan(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
          BasicKind kind, ReduceOp op);
void gather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
            int root);
void scatter(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
             int root);
void allgather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf);
void alltoall(const Comm& c, const void* sbuf, std::size_t bpp, void* rbuf);
void allgatherv(const Comm& c, const void* sbuf, std::size_t sbytes,
                void* rbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs);
void alltoallv(const Comm& c, const void* sbuf,
               std::span<const std::size_t> scounts,
               std::span<const std::size_t> sdispls, void* rbuf,
               std::span<const std::size_t> rcounts,
               std::span<const std::size_t> rdispls);
}  // namespace basic

// Root-centric vectored collectives shared by both suites.
void gatherv_linear(const Comm& c, const void* sbuf, std::size_t sbytes,
                    void* rbuf, std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs, int root);
void scatterv_linear(const Comm& c, const void* sbuf,
                     std::span<const std::size_t> counts,
                     std::span<const std::size_t> displs, void* rbuf,
                     std::size_t rbytes, int root);

}  // namespace jhpc::minimpi::detail
