// The "hier" collective suite: topology-aware two-level algorithms in the
// XHC/SMHC style (per-node leader hierarchies over shared flag trees).
//
// Each collective decomposes into an intra-node phase over a per-node
// shared segment (UniverseImpl::hier_segment) and an inter-node phase run
// among the node leaders with the mv2-shaped point-to-point trees. The
// intra-node data path is single-copy: receivers memcpy directly out of
// the publishing rank's live user buffer, which stays pinned (the
// publisher does not return) until every reader acknowledged via the
// segment's done flags.
//
// Only the collectives below are specialised; the dispatch layer
// (comm.cpp) falls back to the mv2 suite for everything else, so a hier
// Universe still serves the full collective API.
#pragma once

#include <cstddef>

#include "jhpc/minimpi/comm.hpp"

namespace jhpc::minimpi::detail::hier {

void barrier(const Comm& c);
void bcast(const Comm& c, void* buf, std::size_t bytes, int root);
void reduce(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
            BasicKind kind, ReduceOp op, int root);
void allreduce(const Comm& c, const void* sbuf, void* rbuf,
               std::size_t count, BasicKind kind, ReduceOp op);
void gather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
            int root);

}  // namespace jhpc::minimpi::detail::hier
