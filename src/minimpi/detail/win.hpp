// Internal state of a one-sided window (public surface: minimpi/win.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "jhpc/minimpi/group.hpp"
#include "jhpc/minimpi/win.hpp"

namespace jhpc::minimpi::detail {

struct UniverseImpl;

/// Shared state of one window, owned by UniverseImpl::winboard (stored
/// type-erased as shared_ptr<void>; the creating shared_ptr's deleter
/// keeps destruction well-typed) and by every member rank's Win handle.
///
/// Concurrency contract: `epochs[r]` is touched only by rank r's thread.
/// `ranks[t]` is shared — its `mu` guards the window MEMORY (one-sided
/// application and in-window reads), the passive-target lock state and
/// the sequence floors; `target_vtime` is a lock-free CAS-max frontier
/// any origin may advance.
struct WinState {
  UniverseImpl* uni = nullptr;
  int context_id = 0;
  /// Per-context creation index; also selects this window's sync-token
  /// tag pair in the reserved space (detail/coll.hpp).
  std::uint32_t win_id = 0;
  Group group;  ///< comm rank -> world rank
  int nranks = 0;
  int world_size = 0;

  /// One member rank's exposed region plus its remote-access state.
  struct RankWin {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    /// Target-completion frontier: latest virtual time at which any
    /// origin's operation touched this window. The owner observes it
    /// when closing an exposure epoch (fence / wait / its own unlock).
    std::atomic<std::int64_t> target_vtime{0};

    std::mutex mu;
    std::condition_variable cv;
    // Passive-target lock state (under mu).
    int shared_holders = 0;
    bool exclusive_held = false;
    int exclusive_owner = -1;  ///< comm rank, for holder-death detection
    /// Virtual time the previous holder released at: the next holder's
    /// clock jumps here, serializing lock epochs in virtual time.
    std::int64_t lock_release_vtime = 0;
    /// Per-origin (world rank) floor of applied transport sequence
    /// numbers. Sequences per directed pair are strictly increasing and
    /// operations apply in issue order on the origin thread, so each
    /// floor holds the lowest not-yet-applied seq for that origin: a
    /// retransmitted payload (provoked by a lost ack) re-arrives with
    /// seq < floor and is NOT re-applied — puts stay exactly-once,
    /// accumulates never double-fold. (Pair seqs start at 0, which is
    /// why "highest applied" would be the wrong representation.)
    std::vector<std::uint64_t> last_seq;
  };
  /// Indexed by comm rank; unique_ptr keeps the non-movable members
  /// stable while the vector is built.
  std::vector<std::unique_ptr<RankWin>> ranks;
  /// win_allocate backing storage, indexed by comm rank.
  std::vector<std::vector<std::byte>> owned;

  /// Per-rank epoch bookkeeping (owner thread only).
  struct Epoch {
    enum Kind : std::uint8_t { kNone, kFence, kStart, kLock, kLockAll };
    Kind kind = kNone;   ///< current ACCESS epoch
    Kind prev = kNone;   ///< restored when a start/lock epoch closes
    std::vector<int> access_group;  ///< comm ranks (kStart)
    int lock_target = -1;           ///< comm rank (kLock)
    LockType lock_type = LockType::kShared;

    // Exposure is tracked separately from access: a rank can expose via
    // post() while itself accessing other ranks via start().
    bool exposed = false;
    std::vector<int> post_group;  ///< comm ranks exposed to

    /// Origin-completion frontier of this rank's issued operations
    /// (buffers reusable) vs their remote-completion frontier (applied
    /// at the target). Epoch closes reconcile: complete() observes only
    /// max_origin_ns, fence()/unlock() observe both.
    std::int64_t max_origin_ns = 0;
    std::int64_t max_remote_ns = 0;
    /// Operations issued in the current access epoch (flight-recorder
    /// arg of the closing kRmaSync event).
    std::int64_t ops = 0;
  };
  std::vector<Epoch> epochs;
};

}  // namespace jhpc::minimpi::detail
