// Internal transport machinery of minimpi: endpoints, message matching,
// eager/rendezvous delivery. Not installed; shared by the minimpi .cpp
// files and white-box tests only.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <optional>

#include "detail/slab.hpp"
#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/types.hpp"
#include "jhpc/minimpi/universe.hpp"
#include "jhpc/netsim/fabric.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/obs/recorder.hpp"
#include "jhpc/obs/waitstate.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail {

/// Collective algorithms the two suites can run; each has one pvar so
/// figures can cite exactly which algorithm served a message-size range.
enum class CollAlg : int {
  // mv2 suite
  kBarrierDissemination,
  kBcastBinomial,
  kBcastScatterRing,
  kReduceBinomial,
  kAllreduceRecursiveDoubling,
  kAllreduceRing,
  kReduceScatterRing,
  kScanRecursiveDoubling,
  kGatherBinomial,
  kScatterBinomial,
  kAllgatherRecursiveDoubling,
  kAllgatherRing,
  kAlltoallPairwise,
  kAllgathervRing,
  kAlltoallvPairwise,
  // basic suite (flat linear algorithms)
  kBarrierLinear,
  kBcastLinear,
  kReduceLinear,
  kAllreduceLinear,
  kReduceScatterLinear,
  kScanLinear,
  kGatherLinear,
  kScatterLinear,
  kAllgatherLinear,
  kAlltoallLinear,
  kAllgathervLinear,
  kAlltoallvLinear,
  // suite-shared vectored fallbacks
  kGathervLinear,
  kScattervLinear,
  // nonblocking schedule engine (coll_nbc.cpp): one pvar per operation
  kNbcBarrier,
  kNbcBcast,
  kNbcReduce,
  kNbcAllreduce,
  kNbcGather,
  kNbcScatter,
  kNbcAllgather,
  kNbcAlltoall,
  // hier suite (coll_hier.cpp): two-level topology-aware algorithms
  kHierBarrier,
  kHierBcast,
  kHierReduce,
  kHierAllreduce,
  kHierGather,
  kCount,
};

/// Pvar name ("coll.bcast.binomial") and trace label ("bcast[binomial]").
const char* coll_alg_pvar_name(CollAlg alg);
const char* coll_alg_trace_name(CollAlg alg);

/// The observability state of one Universe: the recorder plus every
/// pre-registered transport/collective pvar handle. UniverseImpl holds a
/// null pointer when observability is disabled, so instrumentation sites
/// cost exactly one inline pointer test.
struct UniverseObs {
  UniverseObs(const obs::ObsConfig& config, int ranks, bool faults,
              bool kills);

  obs::Recorder rec;

  // Transport counters (per world rank).
  obs::PvarId msgs_sent, bytes_sent, msgs_recvd, bytes_recvd;
  obs::PvarId eager_sent, rndv_sent;
  obs::PvarId unexpected_hwm;  ///< unexpected-queue depth high-water mark
  obs::PvarId wait_count, wait_ns;

  /// Reliable-transport fault counters. Registered only when the job's
  /// fault plan is enabled, so a fault-free job's pvar table is identical
  /// to a build without this layer (zero-cost-off). Drops/retransmits/
  /// timeouts are charged to the sender's rank slot; ack drops and
  /// suppressed duplicates to the receiver's.
  obs::PvarId fault_data_drops, fault_ack_drops, fault_retransmits;
  obs::PvarId fault_dups, fault_rndv_retries, fault_timeouts;

  /// Rank-failure counters (ULFM layer). Registered only when the job's
  /// fault plan schedules rank kills; `has_rank_pvars` guards every add so
  /// a programmatic Universe::kill_rank on an unconfigured job cannot
  /// touch unregistered ids.
  bool has_rank_pvars = false;
  obs::PvarId fault_rank_kills;     ///< fail-stops executed (dead rank slot)
  obs::PvarId fault_rank_detected;  ///< RankFailedError raises (observer)
  obs::PvarId fault_rank_revokes;   ///< first revoke per comm (initiator)
  obs::PvarId fault_rank_shrinks;   ///< shrink completions (per rank)
  obs::PvarId fault_rank_agrees;    ///< agree completions (per rank)

  /// Eager slab-recycler counters (see detail/slab.hpp). Hits/misses are
  /// charged to the sender's rank slot, recycled bytes and overflow
  /// drops to the releasing (receiver) rank's.
  obs::PvarId slab_hits, slab_misses;
  obs::PvarId slab_recycled_bytes, slab_overflow_drops;

  /// Derived-datatype engine counters. dt.pack_bytes counts payload bytes
  /// gathered or scattered through flattened layouts (charged to the rank
  /// whose thread ran the copy); dt.fastpath_hits counts typed transfers
  /// that moved strided data with no intermediate staging buffer (eager
  /// gather-into-slab, matched direct strided copy, rendezvous
  /// pack-on-the-fly); dt.flatten_runs counts flattened runs walked on
  /// the hot path.
  obs::PvarId dt_pack_bytes, dt_fastpath_hits, dt_flatten_runs;

  /// One-sided (RMA) counters. Always registered, like coll.*: a job
  /// that never creates a window simply reads zero. put/get bytes are
  /// charged to the ORIGIN rank's slot (the thread that drives the
  /// RDMA-emulating transfer); acc_ops counts accumulate + fetch_op
  /// applications at the origin; sync_epochs counts epoch-closing calls
  /// (fence, complete, wait, unlock, unlock_all) per calling rank.
  obs::PvarId rma_put_bytes, rma_get_bytes, rma_acc_ops, rma_sync_epochs;
  /// Virtual time spent inside epoch-closing RMA calls (lock waits and
  /// sync completion), kHistogram.
  obs::PvarId hist_rma_wait;

  /// Per-algorithm collective invocation counts, indexed by CollAlg.
  std::vector<obs::PvarId> coll;

  /// Hier-suite single-copy accounting: payloads copied directly out of
  /// the publishing rank's user buffer (no mailbox bounce), the bytes so
  /// moved, and the virtual time ranks spent waiting on shared flags.
  /// Always registered (like coll.*): a job that never selects the hier
  /// suite simply reads zero.
  obs::PvarId hier_single_copy;        ///< kCounter, unit kNone
  obs::PvarId hier_single_copy_bytes;  ///< kCounter, unit kBytes
  obs::PvarId hier_flag_wait_ns;       ///< kTimer, unit kNanoseconds

  /// Latency distributions (kHistogram pvars, virtual ns): blocking wait
  /// time, eager vs rendezvous send-to-delivery latency, NBC schedule
  /// round latency. hist_slab is measured thread-CPU ns (depot work is
  /// real work, not modelled fabric time).
  obs::PvarId hist_wait, hist_eager, hist_rndv, hist_nbc_round, hist_slab;

  /// Scalasca-style wait-state classifier: late-sender / late-receiver
  /// at the transport match points, wait-at-barrier skew per collective
  /// entry. Registers the waitstate.* pvars.
  obs::WaitState waitstate;

  /// Black-box flight recorder: per-rank rings of recent protocol
  /// events, dumped by Universe::run when a job dies with a transport
  /// timeout or rank failure. Disabled when config.flight_recorder is
  /// false (capacity 0).
  obs::FlightRecorder flight;
};

/// Thrown inside rank threads when another rank failed and the Universe
/// aborted the job; Universe::run treats it as a secondary failure.
class AbortError : public jhpc::Error {
 public:
  AbortError() : Error(jhpc::ErrorCode::kAborted,
                       "minimpi job aborted (another rank failed)") {}
};

/// Thrown inside the thread of a rank that fail-stops (scheduled
/// JHPC_FAULT_KILL death or Universe::kill_rank): unwinds the rank's
/// launch callback. Universe::run swallows it — a planned death is part
/// of the fault scenario, not an error of the job.
class RankKilledError : public jhpc::Error {
 public:
  RankKilledError()
      : Error(jhpc::ErrorCode::kRankFailed,
              "rank fail-stopped by the fault plan") {}
};

/// RAII: marks the current thread as running ULFM recovery internals
/// (shrink/agree). Inside the scope the transport's revoked-communicator
/// checks and the ErrorsAreFatal escalation are suppressed, so recovery
/// can run on exactly the communicators it exists to repair.
class ResilienceScope {
 public:
  ResilienceScope();
  ~ResilienceScope();
  ResilienceScope(const ResilienceScope&) = delete;
  ResilienceScope& operator=(const ResilienceScope&) = delete;
  static bool active();
};

/// Per-rank virtual clock.
///
/// `vclock` is the rank's simulated time: it advances by (a) the real CPU
/// time the rank thread consumes (measured with CLOCK_THREAD_CPUTIME_ID,
/// so parked waits and preemption by other rank threads do not count) and
/// (b) modelled network delays from the fabric. Because each rank's CPU
/// is metered separately, N rank threads on one physical core behave —
/// in virtual time — like N ranks on N cores: tree collectives show their
/// real critical path, bandwidth saturates at the modelled link rate.
/// Only the owning rank thread mutates its clock (receiver-side jumps are
/// applied by the owner when it observes a completion).
struct RankClock {
  std::int64_t vclock = 0;
  std::int64_t last_cpu = 0;
  /// False in deterministic-clock mode (UniverseConfig::
  /// deterministic_clock): real CPU time is not folded in, so the clock
  /// advances only by modelled costs and runs are bit-reproducible.
  bool cpu_passthrough = true;

  /// Fold the CPU consumed since the last sync point into virtual time.
  /// Called at transport-call ENTRY: it charges the user-region work
  /// (application compute, bindings copies, JNI emulation) done since the
  /// previous transport call returned. Must run on the owning thread.
  void advance_cpu() {
    if (!cpu_passthrough) return;
    const std::int64_t cpu = jhpc::thread_cpu_ns();
    vclock += cpu - last_cpu;
    last_cpu = cpu;
  }
  /// Discard CPU consumed since the last sync point WITHOUT charging it.
  /// Called at transport-call EXIT so that lock contention, futex wakeups
  /// and scheduler artifacts of running many rank threads on few cores do
  /// not pollute the virtual clock; the real work a call performs
  /// (payload copies) is charged explicitly via charge()/ChargedSection.
  void resync_cpu() {
    if (cpu_passthrough) last_cpu = jhpc::thread_cpu_ns();
  }
  /// Explicitly add `ns` of modelled or measured work.
  void charge(std::int64_t ns) { vclock += ns; }
  /// Jump forward to `t` if it is in this rank's virtual future.
  void observe(std::int64_t t) {
    if (t > vclock) vclock = t;
  }
};

/// RAII: measures the CPU consumed in a scope (a payload memcpy) and
/// charges it to the clock.
class ChargedSection {
 public:
  explicit ChargedSection(RankClock& clock)
      : clock_(clock),
        t0_(clock.cpu_passthrough ? jhpc::thread_cpu_ns() : 0) {}
  ~ChargedSection() {
    if (clock_.cpu_passthrough) clock_.charge(jhpc::thread_cpu_ns() - t0_);
  }
  ChargedSection(const ChargedSection&) = delete;
  ChargedSection& operator=(const ChargedSection&) = delete;

 private:
  RankClock& clock_;
  std::int64_t t0_;
};

/// Shared state of one non-blocking operation (send or receive).
struct RequestState {
  std::mutex mu;
  std::condition_variable cv;
  bool complete = false;
  bool failed = false;
  /// Failed because the reliable transport's delivery timeout expired;
  /// wait/test rethrow this as TransportTimeoutError.
  bool timed_out = false;
  /// Typed classification of the failure (the satellite error taxonomy):
  /// wait/test map it back to the matching exception type.
  jhpc::ErrorCode err_code = jhpc::ErrorCode::kUnknown;
  /// For kRankFailed: the world ranks known dead when the request failed.
  std::vector<int> failed_ranks;
  std::string error;
  /// VIRTUAL time at which the result exists at its destination (fabric
  /// delivery time); the owner's clock jumps to it on wait/test success.
  std::int64_t ready_at_ns = 0;
  Status status;
  /// Clock of the rank that will wait on this request.
  RankClock* owner_clock = nullptr;
  /// Virtual time at which the receive was posted (rendezvous start).
  std::int64_t post_vtime = 0;

  // Matching fields for posted receives.
  bool is_recv = false;
  void* recv_buf = nullptr;
  std::size_t recv_capacity = 0;
  /// Layout of the receive buffer for typed receives (absent = dense
  /// bytes). recv_capacity stays the PAYLOAD capacity (count * size());
  /// a sender that matches this request scatters straight through the
  /// flattened runs.
  std::optional<Datatype> recv_dt;
  int recv_dt_count = 0;
  int match_src = kAnySource;  // comm rank or wildcard
  int match_tag = kAnyTag;
  int context_id = 0;

  /// Abort flag of the owning universe (polled while waiting).
  const std::atomic<bool>* abort = nullptr;

  /// Owning universe: lets wait/test apply the per-communicator error
  /// handler and notice the owner's own scheduled death. Null only in
  /// white-box unit tests that build a bare RequestState.
  UniverseImpl* uni = nullptr;

  /// Observability of the owning universe (null when disabled) and the
  /// owner's world rank, so wait_request can account wait time.
  UniverseObs* obs = nullptr;
  int owner_world = -1;
};

/// RAII trace span over a transport call, stamped with the owning rank's
/// virtual clock. Must be constructed and destroyed on the clock's owner
/// thread; a null `o` makes it a no-op.
class TransportSpan {
 public:
  TransportSpan(UniverseObs* o, int world_rank, const char* name,
                const RankClock& clock)
      : o_(o), clock_(&clock), name_(name), world_(world_rank) {
    if (o_ != nullptr) o_->rec.begin(world_, name_, clock_->vclock);
  }
  ~TransportSpan() {
    if (o_ != nullptr) o_->rec.end(world_, name_, clock_->vclock);
  }
  TransportSpan(const TransportSpan&) = delete;
  TransportSpan& operator=(const TransportSpan&) = delete;

 private:
  UniverseObs* o_;
  const RankClock* clock_;
  const char* name_;
  int world_;
};

/// RAII over one collective invocation: bumps the algorithm's invocation
/// pvar and wraps the call in a trace span named after it
/// ("bcast[binomial]"). No-op when observability is disabled.
class CollSpan {
 public:
  CollSpan(const Comm& c, CollAlg alg) {
    const ObsAccess a = obs_access(c);
    if (a.obs == nullptr) return;
    o_ = a.obs;
    world_ = a.world_rank;
    clock_ = a.clock;
    name_ = coll_alg_trace_name(alg);
    o_->rec.pvars().add(o_->coll[static_cast<std::size_t>(alg)], world_, 1);
    o_->rec.begin(world_, name_, clock_->vclock);
    // Wait-at-barrier attribution: stamp this rank's entry; the last
    // group member to arrive charges everyone else's skew.
    o_->waitstate.coll_entry(a.context_id, c.group().ranks(), c.rank(),
                             clock_->vclock);
  }
  ~CollSpan() {
    if (o_ != nullptr) o_->rec.end(world_, name_, clock_->vclock);
  }
  CollSpan(const CollSpan&) = delete;
  CollSpan& operator=(const CollSpan&) = delete;

 private:
  UniverseObs* o_ = nullptr;
  const RankClock* clock_ = nullptr;
  const char* name_ = nullptr;
  int world_ = -1;
};

/// Mark `rs` complete. Callers may hold the endpoint lock; waiters only
/// ever take the request lock, so endpoint->request is a safe lock order.
void complete_request(RequestState& rs, const Status& st,
                      std::int64_t ready_at_ns);
void fail_request(RequestState& rs, jhpc::ErrorCode code, std::string error);
/// fail_request + the timed_out mark: waiters get TransportTimeoutError.
void fail_request_timeout(RequestState& rs, std::string error);
/// Fail with kRankFailed: `detect_at_ns` is the virtual time at which the
/// owner's heartbeat detector observes the death (waiters jump to it).
void fail_request_rank(RequestState& rs, std::string error,
                       std::vector<int> failed, std::int64_t detect_at_ns);
/// Fail with kCommRevoked; same detection-latency contract.
void fail_request_revoked(RequestState& rs, std::string error,
                          std::int64_t detect_at_ns);

/// Rethrow a recorded failure as its typed exception (the taxonomy's
/// single decode point: timeout/truncation/rank-failure/revocation).
[[noreturn]] void throw_failure(jhpc::ErrorCode code, const std::string& err,
                                std::vector<int> failed);

/// Block until `rs` completes; jumps the owner's virtual clock to the
/// delivery time; throws the delivered error or AbortError. Must run on
/// the owning rank thread. Returns the final Status.
Status wait_request(RequestState& rs);

/// Non-blocking completion check with virtual-time semantics: a completed
/// operation whose delivery time is still in the owner's virtual future
/// reports "not yet" (the caller's polling CPU advances the clock until
/// it catches up). Returns true and fills `out` once observable.
bool test_request(RequestState& rs, Status* out);

/// An incoming message parked in the unexpected queue.
struct InMsg {
  int src = 0;       // sender's rank in the communicator
  int tag = 0;
  int context_id = 0;
  int src_world = 0;  // sender's world rank (fabric cost at copy time)
  std::size_t bytes = 0;
  /// Per-(src,dst) message sequence number; keys every fault decision
  /// this message's packets make. Only meaningful when faults are on.
  std::uint64_t seq = 0;
  /// Eager payload (owned copy) in a slab drawn from the Universe's
  /// recycler; empty for rendezvous and zero-byte messages. Receive
  /// completion returns it to the pool; teardown with the message still
  /// parked simply frees it.
  Slab eager;
  /// Virtual delivery time: eager payload arrival, or the rendezvous
  /// header's arrival (what probe sees).
  std::int64_t deliver_at_ns = 0;
  /// Sender's virtual time at the send call (rendezvous transfer start).
  std::int64_t send_vtime = 0;
  /// Rendezvous: the sender's live buffer and its completion request.
  const void* rndv_src = nullptr;
  std::shared_ptr<RequestState> rndv_sender;
  /// Layout of the sender's live buffer for typed rendezvous sends: the
  /// receiver packs on the fly, run by run, at consume time. Eager
  /// payloads are gathered into the slab at send time, so they are
  /// always dense and need no layout here.
  std::optional<Datatype> rndv_dt;
  int rndv_dt_count = 0;

  bool is_rndv() const { return rndv_sender != nullptr; }
};

/// One matching domain of an endpoint: the unexpected and posted queues
/// of the context ids that hash to it, under their own lock. Matching is
/// always within one context id (envelope_matches requires equality), so
/// sharding the mailbox by context keeps MPI's per-communicator
/// non-overtaking order while letting concurrent communicators stop
/// contending on one endpoint-wide mutex.
struct MatchBucket {
  std::mutex mu;
  /// Signaled when a message joins `unexpected` (probe wakes) or on abort.
  std::condition_variable cv;
  /// Blocking probes currently parked on `cv` (guarded by `mu`): lets the
  /// hot enqueue path skip the condvar broadcast when nobody listens.
  int probe_waiters = 0;
  std::deque<InMsg> unexpected;
  std::deque<std::shared_ptr<RequestState>> posted;
};

/// Per-world-rank mailbox, sharded by context id.
struct Endpoint {
  static constexpr std::size_t kBuckets = 8;
  std::array<MatchBucket, kBuckets> buckets;
  MatchBucket& bucket(int context_id) {
    return buckets[static_cast<std::size_t>(context_id) % kBuckets];
  }
};

struct NbcState;

/// One per-(context id, virtual node) shared segment of the hier
/// collective suite: the flag tree node members synchronise on, plus the
/// publication fields the single-copy path reads. Ranks are threads of
/// one process, so "shared segment" is literal shared memory here — the
/// repo's stand-in for an XPMEM/CMA mapping of the sender's buffer.
///
/// Single-writer discipline (what keeps TSan quiet without locks):
///   - slot i's ptr/vtime/local_seq and its arrive/done flags are written
///     only by node member i's thread;
///   - release and pub_ptr/pub_vtime are written only by the node
///     leader's thread.
/// Non-atomic fields are published before a release-store of the paired
/// flag and read after an acquire-load of it; cross-operation reuse is
/// ordered by the end-of-op done handshake (the leader never starts
/// operation seq+1 before every member acknowledged seq).
struct HierSeg {
  struct alignas(64) Slot {
    /// Seq-stamped flags: "my input/publication for op seq is visible"
    /// and "I am finished with op seq's shared state".
    std::atomic<std::uint64_t> arrive{0};
    std::atomic<std::uint64_t> done{0};
    /// This member's published buffer and virtual time, guarded by
    /// arrive. The done handshake carries its own timestamp field:
    /// a reader blocked on `done` for op seq cannot be ordered against
    /// this member's `arrive` re-stamp for seq+1 (the member races
    /// ahead once it has seen release), so arrive and done must never
    /// share a timestamp word.
    const void* ptr = nullptr;
    std::int64_t vtime = 0;
    std::int64_t vtime_done = 0;  ///< guarded by done
    /// Owner-thread-only operation counter; all node members advance in
    /// lockstep because collectives are entered in the same order.
    std::uint64_t local_seq = 0;
  };
  /// Leader -> members: op seq's publication (pub_ptr/pub_vtime) is
  /// ready. pub_ptr points into the publishing rank's live user buffer —
  /// the single-copy source.
  std::atomic<std::uint64_t> release{0};
  const void* pub_ptr = nullptr;
  std::int64_t pub_vtime = 0;
  /// Leader -> a non-leader publisher (e.g. a bcast root that is not
  /// its node's leader): every member's done for op seq has been
  /// collected, so the published buffer is free to reuse. Written only
  /// by the leader; the publisher must not scan the done flags itself —
  /// its reads could not be ordered against the members' next-op
  /// writes. Safe to re-stamp because the leader re-enters this path
  /// only after acquiring that publisher's arrive for the next op.
  std::atomic<std::uint64_t> all_done{0};
  std::int64_t all_done_vtime = 0;
  std::vector<Slot> slots;  ///< sized once at creation; never reallocated

  explicit HierSeg(std::size_t nmembers) : slots(nmembers) {}
};

/// Per-world-rank nonblocking-collective progress state (coll_nbc.cpp).
/// Owner-thread-only: slot w is touched exclusively by rank w's thread,
/// so no lock guards it.
struct NbcRank {
  /// Active schedules in initiation order; a wait or test on any one of
  /// them progresses all of them (MPI's weak-progress contract: the
  /// engine only runs inside MPI calls, but it never starves a sibling).
  std::vector<std::shared_ptr<NbcState>> active;
  /// Next operation sequence number per context id. Collectives must be
  /// entered by every rank of a communicator in the same order, so equal
  /// counters yield the same matching tag on every rank.
  std::unordered_map<int, std::uint32_t> seq;
};

/// The state behind a Universe, shared with Comm/Request implementations.
struct UniverseImpl {
  explicit UniverseImpl(UniverseConfig cfg);

  UniverseConfig config;
  netsim::Fabric fabric;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  /// Eager payload recycler: senders draw, receive completion returns.
  SlabPool slab;
  /// One virtual clock per world rank (owner-thread mutation only).
  std::vector<RankClock> clocks;
  /// Context ids: 0 is COMM_WORLD; dup/split/create allocate upward.
  std::atomic<int> next_context_id{1};
  std::atomic<bool> abort{false};

  /// Null when observability is disabled (the default): every
  /// instrumentation site in the transport guards on this one pointer.
  std::unique_ptr<UniverseObs> obs;

  /// Nonblocking-collective schedules, one slot per world rank.
  std::vector<NbcRank> nbc;

  // --- Hier collective suite (coll_hier.cpp) ----------------------------
  /// Per-(context id, node) shared segments, created lazily on first use
  /// (the mutex guards only creation; the segments themselves are
  /// lock-free flag trees). unique_ptr keeps segment addresses stable
  /// across map rebalancing.
  struct HierState {
    std::mutex mu;
    std::map<std::pair<int, int>, std::unique_ptr<HierSeg>> segs;
  };
  HierState hier;

  /// Find-or-create the segment for (context_id, node) with `nmembers`
  /// node-resident comm ranks. Every member resolves the same segment.
  HierSeg& hier_segment(int context_id, int node, std::size_t nmembers);

  /// Drop all segments (new job on a reused Universe: flag sequence
  /// numbers restart with the members' local counters).
  void hier_reset();

  // --- One-sided windows (win.cpp) --------------------------------------
  /// Registry of live window states, keyed by (context id, per-comm
  /// creation index). win_create is collective and communicators enter
  /// collectives in one order, so every member of call k resolves the
  /// same key. Values are type-erased (the concrete WinState lives in
  /// detail/win.hpp); the deleter captured at creation keeps destruction
  /// well-typed. `seq` is the per-world-rank, per-context creation
  /// counter (owner-thread only, NbcRank-style).
  struct WinBoard {
    std::mutex mu;
    std::map<std::pair<int, std::uint32_t>, std::shared_ptr<void>> wins;
    std::vector<std::unordered_map<int, std::uint32_t>> seq;
  };
  WinBoard winboard;

  /// Drop all window registrations and reset creation counters (new job
  /// on a reused Universe).
  void win_reset();

  /// Cached fabric.faults_enabled(): the transport's zero-cost-off guard.
  /// When false, every fault/reliability code path below is skipped and
  /// message handling is byte-identical to a fault-free build.
  bool faults_on = false;

  // --- ULFM rank-failure layer ------------------------------------------
  /// One fault-tolerant agreement instance (Comm::agree / Comm::shrink).
  /// Ranks are threads of one process, so agreement runs on a shared
  /// board under FailureState::mu: every participant contributes, the
  /// round completes once each group member has contributed or died, and
  /// the first rank to see completion commits one consistent snapshot.
  /// The modelled network cost (2*ceil(log2 n) hops, the depth of a
  /// reduce+bcast tree) is charged to each caller's virtual clock.
  struct AgreeSlot {
    int flag_and = ~0;           ///< AND over contributed flags
    int new_cid = 0;             ///< shrink: context id, allocated once
    std::set<int> contributed;   ///< world ranks that contributed
    bool committed = false;
    int result_flag = 0;
    std::vector<int> result_dead;  ///< agreed failed set (world, sorted)
  };

  /// Epitaph timestamp for an externally-killed rank whose clock the
  /// detector could not read (clocks are thread-local to their owner);
  /// refined to the real death time if the victim runs again.
  static constexpr std::int64_t kDeathTimeUnknown = -1;

  /// All mutable rank-failure state. The fast guards (`kills_on`,
  /// `dead_count`, `revoked_count`) are the zero-cost-off story: with no
  /// kill plan and no revocation, every transport entry pays exactly one
  /// relaxed atomic load.
  struct FailureState {
    std::atomic<bool> kills_on{false};
    std::atomic<int> dead_count{0};
    std::atomic<int> revoked_count{0};
    /// Per world rank: fail-stopped; its death time; its scheduled death
    /// time (INT64_MAX = never). Arrays sized world_size.
    std::unique_ptr<std::atomic<bool>[]> dead;
    std::unique_ptr<std::atomic<std::int64_t>[]> dead_at;
    std::unique_ptr<std::atomic<std::int64_t>[]> kill_at;

    std::mutex mu;
    /// Agreement-board wakeups (contributions and deaths both re-evaluate
    /// the completion condition).
    std::condition_variable cv;
    std::set<int> revoked;  ///< revoked context ids
    /// Context id -> the communicator's world ranks in comm-rank order;
    /// maps a posted receive's match_src to a world identity when the
    /// reaper decides which requests a death breaks.
    std::unordered_map<int, std::vector<int>> comm_groups;
    /// Context id -> error handler (absent = kErrorsAreFatal).
    std::unordered_map<int, Errhandler> errhandlers;
    /// (context id, per-comm agreement round) -> slot.
    std::map<std::pair<int, std::uint64_t>, AgreeSlot> agree;
    /// (context id, world rank) -> next agreement round for that rank.
    std::map<std::pair<int, int>, std::uint64_t> agree_seq;
  };
  FailureState fail;

  /// Result of one agreement round (Comm::agree / Comm::shrink).
  struct AgreeResult {
    int flag = 0;
    int new_cid = 0;
    std::vector<int> agreed_dead;
  };

  bool kills_on() const {
    return fail.kills_on.load(std::memory_order_relaxed);
  }
  bool rank_dead(int world_rank) const {
    return kills_on() &&
           fail.dead[static_cast<std::size_t>(world_rank)].load(
               std::memory_order_acquire);
  }
  /// True when this rank has fail-stopped (no reaping; safe under locks).
  bool self_dead(int my_world) const { return rank_dead(my_world); }

  /// Transport-entry check on the calling rank's own thread: executes a
  /// scheduled death (kill_at reached in virtual time) or an already
  /// marked one by reaping and throwing RankKilledError. Must be called
  /// with no transport locks held.
  void check_self_alive(int my_world);

  /// Universe::kill_rank: fail-stop `world_rank` now, from any thread.
  void external_kill(int world_rank);

  /// The reaper: mark `world_rank` dead as of `at_vns` and break every
  /// operation the death strands — posted receives matching the dead rank
  /// (or any-source over a group containing it), the dead rank's own
  /// parked requests, rendezvous senders parked toward its endpoint, and
  /// its unmatched rendezvous envelopes (their source buffer unwinds with
  /// the dead thread). Survivors observe the failure no earlier than
  /// at_vns + heartbeat_ns. Idempotent.
  void mark_dead(int world_rank, std::int64_t at_vns);

  void register_comm(int context_id, std::vector<int> world_ranks);
  void set_errhandler(int context_id, Errhandler eh);
  Errhandler errhandler(int context_id);

  /// Comm::revoke: mark the communicator revoked and sweep-fail every
  /// pending operation on it (posted receives, parked rendezvous
  /// senders); in-flight eager payloads on it are dropped. Idempotent;
  /// `my_world` is the initiating rank (pvar + propagation timestamp).
  void revoke_comm(int context_id, int my_world);
  bool comm_revoked(int context_id);

  /// World ranks of `context_id`'s group currently known dead (sorted).
  std::vector<int> dead_in_comm(int context_id);

  /// First dead world rank a receive matching (src, any) could involve,
  /// or -1. `match_src` is a comm rank or kAnySource.
  int dead_peer_for_recv(int context_id, int my_world, int match_src);

  /// Raise a rank-failure/revocation condition on the calling rank:
  /// counts fault.rank.detected, applies the communicator's error handler
  /// (ErrorsAreFatal aborts the job first unless inside ResilienceScope),
  /// then throws the typed exception.
  [[noreturn]] void raise_failure(int my_world, int context_id,
                                  jhpc::ErrorCode code,
                                  const std::string& what,
                                  std::vector<int> failed);

  /// Combined cheap entry check (self-death, revocation, dead peer).
  /// `peer_world` < 0 means "no specific peer".
  void entry_checks(int my_world, int context_id, int peer_world);

  /// One fault-tolerant agreement round on `context_id` (resilience.cpp).
  /// Completes once every group member contributed or died; all
  /// participants read the same committed snapshot. With `alloc_cid` the
  /// slot also allocates one fresh context id (Comm::shrink).
  AgreeResult agree_on(int context_id, int my_world, int flag,
                       bool alloc_cid);

  /// Reset the rank-failure layer for a (re)starting job: arm the
  /// config's kill schedule, clear death/revocation/agreement state.
  void reset_failure_state();

  /// Drop every parked request and unexpected message, returning eager
  /// slabs to the recycler. Run at job start and after join so a run that
  /// ended in failures (timeouts, kills, aborts) cannot leak stale
  /// matches — or dangling buffers — into the next run on this Universe.
  void quiesce();

  /// Per directed (src,dst) world-rank pair: latest data delivery time
  /// handed out so far. The reliable transport floors every delivery to
  /// it, so retransmitted messages cannot be overtaken in virtual time by
  /// later sends from the same source (per-(src,comm) FIFO holds under
  /// faults). Allocated only when faults_on; CAS-max updated (eager
  /// deliveries raise it from the sender's thread, late-matched
  /// rendezvous from the receiver's).
  std::unique_ptr<std::atomic<std::int64_t>[]> fifo_floor;

  /// Floor `t` to the pair's FIFO floor and raise the floor to the
  /// result. Returns the delivery time to use.
  std::int64_t fifo_raise(int src_world, int dst_world, std::int64_t t);

  /// Zero the FIFO floors (new job on a reused Universe).
  void reset_fault_state();

  /// Result of one reliable (ack'd, retransmitting) payload transfer.
  struct ReliableTx {
    /// Receiver-side arrival of the first successful data attempt.
    std::int64_t deliver_at_ns = 0;
    /// When the sender's reliability engine received the ack (rendezvous
    /// sender completion time).
    std::int64_t acked_at_ns = 0;
  };

  /// Drive one sequence-numbered payload through the fault plan:
  /// data attempt -> ack attempt, retransmitting with exponential backoff
  /// (FaultPlan::rto_ns, doubling up to rto_max_ns) on either loss, and
  /// counting drops/retransmits/duplicates as pvars. Duplicate data
  /// arrivals (lost ack) are suppressed: the payload is delivered exactly
  /// once, at the FIRST successful attempt's arrival time. All timestamps
  /// are virtual; nothing blocks. Throws TransportTimeoutError once the
  /// next retry would exceed start_ns + FaultPlan::delivery_timeout_ns.
  /// `trace_rank` is the rank whose thread runs this call (its trace ring
  /// records the retransmit spans). Requires faults_on.
  ReliableTx reliable_transmit(int src_world, int dst_world,
                               std::size_t bytes, std::uint64_t seq,
                               std::int64_t start_ns, int trace_rank,
                               const char* what);

  /// reliable_transmit with a receiver-side arrival hook: `on_arrival`
  /// runs for EVERY data attempt that survives the fault plan — the
  /// first delivery and every duplicate a lost ack provokes — with that
  /// attempt's arrival time. This is the RDMA-emulating RMA path's entry
  /// point: the hook applies the one-sided operation to the exposed
  /// window, and its seq-dedup is what keeps retransmitted puts and
  /// accumulates idempotent (the two-sided path gets the same effect
  /// from the unexpected queue's sequence suppression). A null hook
  /// reduces this to reliable_transmit.
  ReliableTx reliable_transmit_each(
      int src_world, int dst_world, std::size_t bytes, std::uint64_t seq,
      std::int64_t start_ns, int trace_rank, const char* what,
      const std::function<void(std::int64_t)>& on_arrival);

  /// Same retry discipline for one control message (RTS/CTS): returns its
  /// arrival time; counts fault.rndv_retries; throws TransportTimeoutError
  /// on budget exhaustion. Requires faults_on.
  std::int64_t reliable_control(int src_world, int dst_world,
                                std::uint64_t seq, netsim::FaultSalt salt,
                                std::int64_t start_ns, int trace_rank,
                                const char* what);

  /// Set the abort flag and wake every parked thread.
  void abort_all();
  void throw_if_aborted() const;

  /// Sender-side delivery. Returns the sender's request when the message
  /// went rendezvous-unmatched (caller waits or wraps it in a Request);
  /// nullptr when the send completed locally. `sdt`/`sdt_count` describe
  /// a noncontiguous source buffer (null = dense bytes): eager sends
  /// gather the flattened runs directly into the transport slab (one
  /// copy), matched sends scatter straight into the receiver's layout,
  /// and rendezvous parks the layout alongside the live buffer.
  /// `bytes` is always the PAYLOAD size (sdt_count * sdt->size()).
  std::shared_ptr<RequestState> deliver(int src_world, int dst_world,
                                        int context_id, int src_comm_rank,
                                        int tag, const void* buf,
                                        std::size_t bytes,
                                        const Datatype* sdt = nullptr,
                                        int sdt_count = 0);

  /// Receiver-side post. Returns the receive request (matched-and-complete
  /// or parked in the posted queue). `rdt`/`rdt_count` describe a
  /// noncontiguous receive buffer; `capacity` stays the payload capacity.
  std::shared_ptr<RequestState> post_recv(int my_world, int context_id,
                                          int src, int tag, void* buf,
                                          std::size_t capacity,
                                          const Datatype* rdt = nullptr,
                                          int rdt_count = 0);

  /// Blocking receive. With observability off this takes the
  /// matched-receive fast path: when the message is already pending it is
  /// consumed in place — same single copy, same virtual-time result —
  /// without allocating a RequestState or round-tripping its lock and
  /// condvar. Instrumented jobs (and unmatched receives) use
  /// post_recv + wait_request unchanged, so the post/wait trace spans and
  /// wait_count/wait_ns pvars stay part of the observable contract.
  /// Throws like wait_request.
  Status blocking_recv(int my_world, int context_id, int src, int tag,
                       void* buf, std::size_t capacity,
                       const Datatype* rdt = nullptr, int rdt_count = 0);

  /// Withdraw a posted receive whose owner is unwinding without it having
  /// completed (a rank failure surfaced from a sibling operation, e.g. the
  /// send half of a sendrecv). The receive buffer is about to go out of
  /// scope, so the request must stop being matchable: a sender that found
  /// it in the posted queue would memcpy into freed memory. Taking the
  /// bucket lock here also fences a concurrent deliver() that matched it
  /// first — its copy runs under the same lock, so once cancel returns
  /// the buffer is quiescent and safe to destroy.
  void cancel_recv(const RequestState& rs);

  /// Outcome of consuming one matched unexpected message in place.
  struct Consumed {
    std::int64_t arrival_ns = 0;  ///< receive completion (virtual time)
    bool ok = true;
    bool timed_out = false;  ///< failure was a transport timeout
    /// Typed failure classification (kTruncated, kTransportTimeout).
    jhpc::ErrorCode code = jhpc::ErrorCode::kUnknown;
    std::string error;  ///< set when !ok
  };

  /// Copy a matched unexpected message into the receive buffer and settle
  /// every side effect of the match: the single payload copy (charged),
  /// rendezvous CTS/payload scheduling and sender completion, eager slab
  /// release back to the recycler, truncation handling, and the
  /// receive-side pvars. Caller holds the bucket lock and erased the
  /// message from the queue; both post_recv and the blocking_recv fast
  /// path delegate here so their semantics cannot drift.
  Consumed consume_matched(InMsg msg, int my_world, void* buf,
                           std::size_t capacity, RankClock& rclock,
                           const Datatype* rdt = nullptr,
                           int rdt_count = 0);

  /// Probe my endpoint for a matching pending message. Blocking variant
  /// waits; both fill `out` and return true on a match.
  bool probe_match(int my_world, int context_id, int src, int tag,
                   bool blocking, Status* out);
};

/// True when the message envelope satisfies the receive's match spec.
bool envelope_matches(int msg_cid, int msg_src, int msg_tag, int want_cid,
                      int want_src, int want_tag);

}  // namespace jhpc::minimpi::detail
