// The "hier" collective suite: two-level topology-aware algorithms in the
// XHC/SMHC style. See detail/coll_hier.hpp for the design contract and
// detail/transport.hpp (HierSeg) for the shared-segment memory-ordering
// rules.
//
// Every operation follows one template over its node's segment:
//
//   IN   members publish (slot.ptr/vtime) and arrive(seq)
//   MID  the node leader runs the inter-node phase among all leaders,
//        using the mv2-shaped trees on the parent communicator
//   OUT  the leader publishes (pub_ptr/pub_vtime) and releases(seq);
//        members consume single-copy and acknowledge done(seq)
//   END  the leader (and the rank whose live buffer was published) waits
//        for every acknowledgement before returning
//
// The END wait is what pins the publisher's user buffer for the
// single-copy path — and what makes cross-operation reuse of the
// segment's non-atomic fields safe: nobody writes op seq+1 state before
// every reader of op seq has acknowledged.
//
// Virtual time: a flag hand-off costs hier_flag_ns (one cache-line
// transfer), not a trip through the shared-memory message channel; the
// payload copies are real CPU, charged exactly like the transport's
// copies. Waits poll the abort flag and the failure state, so a rank
// death surfaces as a typed RankFailedError instead of a spin-forever.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "detail/coll.hpp"
#include "detail/coll_hier.hpp"
#include "detail/transport.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail::hier {
namespace {

/// Per-call context: the caller's identity, clock and universe handles.
struct Ctx {
  UniverseImpl* uni;
  UniverseObs* o;  // null when observability is off
  RankClock* clock;
  int my_world;
  int cid;
  std::int64_t flag_ns;
};

Ctx make_ctx(const Comm& c) {
  const ObsAccess a = obs_access(c);
  return Ctx{a.uni, a.obs, a.clock, a.world_rank, a.context_id,
             a.uni->config.hier_flag_ns};
}

/// The comm's node decomposition. Groups are ordered by fabric node id;
/// within a group comm ranks ascend; the leader is the lowest comm rank.
/// Every rank derives the identical Topo (it is a pure function of the
/// comm's group and the fabric map).
struct Topo {
  std::vector<std::vector<int>> groups;  ///< comm ranks per node, ascending
  std::vector<int> node_ids;             ///< fabric node id per group
  std::vector<int> leaders;              ///< leaders[g] = groups[g][0]
  std::vector<int> group_of;             ///< comm rank -> group index
  int my_group = 0;
  std::size_t my_pos = 0;  ///< my index within groups[my_group]
  bool is_leader = false;
};

Topo topo_of(const Comm& c, const Ctx& h) {
  Topo t;
  const int size = c.size();
  std::map<int, std::vector<int>> by_node;
  for (int r = 0; r < size; ++r)
    by_node[h.uni->fabric.node_of(c.group().world_rank(r))].push_back(r);
  t.group_of.assign(static_cast<std::size_t>(size), -1);
  t.groups.reserve(by_node.size());
  for (auto& [node_id, members] : by_node) {
    const int g = static_cast<int>(t.groups.size());
    for (const int r : members) t.group_of[static_cast<std::size_t>(r)] = g;
    t.node_ids.push_back(node_id);
    t.leaders.push_back(members.front());
    t.groups.push_back(std::move(members));
  }
  const int me = c.rank();
  t.my_group = t.group_of[static_cast<std::size_t>(me)];
  const auto& mine = t.groups[static_cast<std::size_t>(t.my_group)];
  t.my_pos = static_cast<std::size_t>(
      std::lower_bound(mine.begin(), mine.end(), me) - mine.begin());
  t.is_leader = mine.front() == me;
  return t;
}

/// My node's segment, or nullptr when I am alone on my node (degenerate
/// hierarchy: nothing to synchronise intra-node).
HierSeg* segment_of(const Topo& t, const Ctx& h) {
  const auto& mine = t.groups[static_cast<std::size_t>(t.my_group)];
  if (mine.size() <= 1) return nullptr;
  return &h.uni->hier_segment(
      h.cid, t.node_ids[static_cast<std::size_t>(t.my_group)], mine.size());
}

/// Spin until `flag` >= seq, polling the abort flag and the failure
/// state so a dead peer or a revoked communicator surfaces as its typed
/// error instead of a hang. The spin's CPU is discarded afterwards via
/// resync (the rank is waiting, not computing).
void wait_flag(const Ctx& h, const std::atomic<std::uint64_t>& flag,
               std::uint64_t seq) {
  unsigned spins = 0;
  while (flag.load(std::memory_order_acquire) < seq) {
    if ((++spins & 0x3Fu) == 0) {
      h.uni->throw_if_aborted();
      h.uni->check_self_alive(h.my_world);
      h.uni->entry_checks(h.my_world, h.cid, /*peer_world=*/-1);
      if (h.uni->kills_on()) {
        if (auto dead = h.uni->dead_in_comm(h.cid); !dead.empty()) {
          h.uni->raise_failure(h.my_world, h.cid,
                               jhpc::ErrorCode::kRankFailed,
                               "hier collective: peer rank failed",
                               std::move(dead));
        }
      }
      std::this_thread::yield();
    }
  }
}

/// Settle the clock after a flag wait: discard the spin CPU, jump to the
/// publisher's time plus one flag hand-off, and account the virtual wait.
void observe_flag(const Ctx& h, std::int64_t publisher_vtime) {
  h.clock->resync_cpu();
  const std::int64_t target = publisher_vtime + h.flag_ns;
  if (h.o != nullptr) {
    const std::int64_t waited =
        target > h.clock->vclock ? target - h.clock->vclock : 0;
    h.o->rec.pvars().add(h.o->hier_flag_wait_ns, h.my_world, waited);
  }
  h.clock->observe(target);
}

void count_single_copy(const Ctx& h, std::size_t bytes) {
  if (h.o == nullptr) return;
  h.o->rec.pvars().add(h.o->hier_single_copy, h.my_world, 1);
  h.o->rec.pvars().add(h.o->hier_single_copy_bytes, h.my_world,
                       static_cast<std::int64_t>(bytes));
}

/// Leader-side wait for a set of member flags; returns the maximum
/// published member vtime. Each flag guards its own timestamp field
/// (vtime under arrive, vtime_done under done): a member that has seen
/// release for this seq may already be re-stamping for seq+1, so a
/// done-wait must never read the arrive-guarded word.
std::int64_t wait_members(const Ctx& h, HierSeg& seg, std::uint64_t seq,
                          std::size_t skip_a, std::size_t skip_b,
                          bool done_flags) {
  std::int64_t tmax = h.clock->vclock;
  for (std::size_t i = 0; i < seg.slots.size(); ++i) {
    if (i == skip_a || i == skip_b) continue;
    HierSeg::Slot& s = seg.slots[i];
    wait_flag(h, done_flags ? s.done : s.arrive, seq);
    tmax = std::max(tmax, done_flags ? s.vtime_done : s.vtime);
  }
  return tmax;
}

// --- Inter-node primitives over the leader team -------------------------
// `team` holds comm ranks (one leader per node, ordered by node id);
// `me_idx` is the caller's index. These are the mv2 tree shapes with team
// indices in place of comm ranks, on the parent communicator's reserved
// hier tags — no sub-communicator is materialised.

int team_index(const std::vector<int>& team, int comm_rank) {
  return static_cast<int>(
      std::find(team.begin(), team.end(), comm_rank) - team.begin());
}

void team_barrier(const Comm& c, const std::vector<int>& team, int me_idx) {
  const int n = static_cast<int>(team.size());
  const char token_out = 0;
  char token_in = 0;
  for (int mask = 1; mask < n; mask <<= 1) {
    const int dst = team[static_cast<std::size_t>((me_idx + mask) % n)];
    const int src = team[static_cast<std::size_t>((me_idx - mask + n) % n)];
    c.sendrecv(&token_out, sizeof(token_out), dst, kTagHierBarrier,
               &token_in, sizeof(token_in), src, kTagHierBarrier);
  }
}

void team_bcast(const Comm& c, const std::vector<int>& team, int me_idx,
                int root_idx, void* buf, std::size_t bytes) {
  const int n = static_cast<int>(team.size());
  const int rel = (me_idx - root_idx + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = team[static_cast<std::size_t>(
          (rel - mask + root_idx + n) % n)];
      c.recv(buf, bytes, src, kTagHierBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n) {
      const int dst =
          team[static_cast<std::size_t>((rel + mask + root_idx) % n)];
      c.send(buf, bytes, dst, kTagHierBcast);
    }
    mask >>= 1;
  }
}

/// Binomial reduce of `acc` (in place, caller's contribution included)
/// toward team[root_idx].
void team_reduce(const Comm& c, const std::vector<int>& team, int me_idx,
                 int root_idx, void* acc, std::size_t count, BasicKind kind,
                 ReduceOp op) {
  const int n = static_cast<int>(team.size());
  const std::size_t bytes = count * basic_size(kind);
  const int rel = (me_idx - root_idx + n) % n;
  std::vector<std::byte> incoming(bytes);
  int mask = 1;
  while (mask < n) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < n) {
        const int src =
            team[static_cast<std::size_t>((src_rel + root_idx) % n)];
        c.recv(incoming.data(), bytes, src, kTagHierReduce);
        apply_reduce(op, kind, acc, incoming.data(), count);
      }
    } else {
      const int dst =
          team[static_cast<std::size_t>(((rel & ~mask) + root_idx) % n)];
      c.send(acc, bytes, dst, kTagHierReduce);
      break;
    }
    mask <<= 1;
  }
}

/// Recursive-doubling allreduce of `buf` (in place) across the team, with
/// the standard non-power-of-two fold.
void team_allreduce(const Comm& c, const std::vector<int>& team, int me_idx,
                    void* buf, std::size_t count, BasicKind kind,
                    ReduceOp op) {
  const int n = static_cast<int>(team.size());
  if (n == 1) return;
  const std::size_t bytes = count * basic_size(kind);
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  std::vector<std::byte> incoming(bytes);

  auto rank_of = [&](int idx) { return team[static_cast<std::size_t>(idx)]; };

  int newidx;
  if (me_idx < 2 * rem) {
    if (me_idx % 2 == 0) {
      c.send(buf, bytes, rank_of(me_idx + 1), kTagHierAllreduce);
      newidx = -1;
    } else {
      c.recv(incoming.data(), bytes, rank_of(me_idx - 1), kTagHierAllreduce);
      apply_reduce(op, kind, buf, incoming.data(), count);
      newidx = me_idx / 2;
    }
  } else {
    newidx = me_idx - rem;
  }

  if (newidx != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newidx ^ mask;
      const int partner_idx =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      c.sendrecv(buf, bytes, rank_of(partner_idx), kTagHierAllreduce,
                 incoming.data(), bytes, rank_of(partner_idx),
                 kTagHierAllreduce);
      apply_reduce(op, kind, buf, incoming.data(), count);
    }
  }

  if (me_idx < 2 * rem) {
    if (me_idx % 2 != 0) {
      c.send(buf, bytes, rank_of(me_idx - 1), kTagHierAllreduce);
    } else {
      c.recv(buf, bytes, rank_of(me_idx + 1), kTagHierAllreduce);
    }
  }
}

constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

}  // namespace

void barrier(const Comm& c) {
  if (c.size() == 1) return;
  const Ctx h = make_ctx(c);
  h.clock->advance_cpu();
  h.uni->check_self_alive(h.my_world);
  h.uni->entry_checks(h.my_world, h.cid, -1);
  CollSpan span(c, CollAlg::kHierBarrier);
  const Topo t = topo_of(c, h);
  HierSeg* seg = segment_of(t, h);
  const std::uint64_t seq =
      seg != nullptr ? ++seg->slots[t.my_pos].local_seq : 0;

  if (t.is_leader) {
    if (seg != nullptr) {
      // Gather-in: everyone on my node has arrived.
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                   /*done_flags=*/false));
    }
    if (t.leaders.size() > 1)
      team_barrier(c, t.leaders, t.group_of[static_cast<std::size_t>(c.rank())]);
    if (seg != nullptr) {
      h.clock->advance_cpu();
      seg->pub_vtime = h.clock->vclock;
      seg->release.store(seq, std::memory_order_release);
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                   /*done_flags=*/true));
    }
  } else {
    HierSeg::Slot& mine = seg->slots[t.my_pos];
    mine.vtime = h.clock->vclock;
    mine.arrive.store(seq, std::memory_order_release);
    wait_flag(h, seg->release, seq);
    observe_flag(h, seg->pub_vtime);
    mine.vtime_done = h.clock->vclock;
    mine.done.store(seq, std::memory_order_release);
  }
}

void bcast(const Comm& c, void* buf, std::size_t bytes, int root) {
  if (c.size() == 1 || bytes == 0) return;
  const Ctx h = make_ctx(c);
  h.clock->advance_cpu();
  h.uni->check_self_alive(h.my_world);
  h.uni->entry_checks(h.my_world, h.cid, -1);
  CollSpan span(c, CollAlg::kHierBcast);
  const Topo t = topo_of(c, h);
  const int me = c.rank();
  const int root_group = t.group_of[static_cast<std::size_t>(root)];
  HierSeg* seg = segment_of(t, h);
  const std::uint64_t seq =
      seg != nullptr ? ++seg->slots[t.my_pos].local_seq : 0;
  const auto& mine = t.groups[static_cast<std::size_t>(t.my_group)];
  const std::size_t root_pos =
      t.my_group == root_group
          ? static_cast<std::size_t>(
                std::lower_bound(mine.begin(), mine.end(), root) -
                mine.begin())
          : kNoSkip;

  if (t.is_leader) {
    const int my_leader_idx = team_index(t.leaders, me);
    const int root_leader_idx =
        team_index(t.leaders, t.leaders[static_cast<std::size_t>(root_group)]);
    if (t.my_group == root_group && me != root) {
      // The data enters through root's published buffer: copy it out
      // directly (my own receive IS the single-copy).
      HierSeg::Slot& rs = seg->slots[root_pos];
      wait_flag(h, rs.arrive, seq);
      observe_flag(h, rs.vtime);
      {
        ChargedSection charged(*h.clock);
        std::memcpy(buf, rs.ptr, bytes);
      }
      count_single_copy(h, bytes);
      seg->pub_ptr = rs.ptr;  // members copy straight from root's buffer
      seg->pub_vtime = h.clock->vclock;
      seg->release.store(seq, std::memory_order_release);
      team_bcast(c, t.leaders, my_leader_idx, root_leader_idx, buf, bytes);
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, root_pos,
                                   /*done_flags=*/true));
      // Relay "everyone is done with your buffer" to the non-leader
      // root — it must not scan the done flags itself (HierSeg docs) —
      // then collect the root's ack so pub/all_done state can be
      // rewritten next op without racing the root's reads.
      seg->all_done_vtime = h.clock->vclock;
      seg->all_done.store(seq, std::memory_order_release);
      HierSeg::Slot& rs2 = seg->slots[root_pos];
      wait_flag(h, rs2.done, seq);
      observe_flag(h, rs2.vtime_done);
    } else {
      if (me != root)
        team_bcast(c, t.leaders, my_leader_idx, root_leader_idx, buf, bytes);
      if (seg != nullptr) {
        h.clock->advance_cpu();
        seg->pub_ptr = buf;
        seg->pub_vtime = h.clock->vclock;
        seg->release.store(seq, std::memory_order_release);
        if (me == root)
          team_bcast(c, t.leaders, my_leader_idx, root_leader_idx, buf,
                     bytes);
        observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                     /*done_flags=*/true));
      } else if (me == root) {
        team_bcast(c, t.leaders, my_leader_idx, root_leader_idx, buf, bytes);
      }
    }
  } else if (me == root) {
    // Non-leader root: publish my live buffer; the leader republishes it
    // and forwards inter-node; peers copy straight out of it.
    HierSeg::Slot& mineslot = seg->slots[t.my_pos];
    mineslot.ptr = buf;
    mineslot.vtime = h.clock->vclock;
    mineslot.arrive.store(seq, std::memory_order_release);
    // release signals the leader's own copy completed; the leader's
    // all_done relay covers every other member's. Only then is `buf`
    // free to reuse. (Scanning the done flags here would race: the
    // leader releases before collecting them, so a fast member could
    // already be re-stamping for the next op.)
    wait_flag(h, seg->release, seq);
    observe_flag(h, seg->pub_vtime);
    wait_flag(h, seg->all_done, seq);
    observe_flag(h, seg->all_done_vtime);
    // Ack: my reads of pub/all_done state are finished (the leader
    // collects this before it may rewrite them next op).
    mineslot.vtime_done = h.clock->vclock;
    mineslot.done.store(seq, std::memory_order_release);
  } else {
    wait_flag(h, seg->release, seq);
    observe_flag(h, seg->pub_vtime);
    {
      ChargedSection charged(*h.clock);
      std::memcpy(buf, seg->pub_ptr, bytes);
    }
    count_single_copy(h, bytes);
    HierSeg::Slot& mineslot = seg->slots[t.my_pos];
    mineslot.vtime_done = h.clock->vclock;
    mineslot.done.store(seq, std::memory_order_release);
  }
}

void reduce(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
            BasicKind kind, ReduceOp op, int root) {
  const std::size_t bytes = count * basic_size(kind);
  if (c.size() == 1) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    return;
  }
  if (count == 0) return;
  const Ctx h = make_ctx(c);
  h.clock->advance_cpu();
  h.uni->check_self_alive(h.my_world);
  h.uni->entry_checks(h.my_world, h.cid, -1);
  CollSpan span(c, CollAlg::kHierReduce);
  const Topo t = topo_of(c, h);
  const int me = c.rank();
  const int root_group = t.group_of[static_cast<std::size_t>(root)];
  const int root_leader = t.leaders[static_cast<std::size_t>(root_group)];
  HierSeg* seg = segment_of(t, h);
  const std::uint64_t seq =
      seg != nullptr ? ++seg->slots[t.my_pos].local_seq : 0;

  if (t.is_leader) {
    // Node-local accumulation, folding member inputs directly out of
    // their live buffers in ascending comm-rank order.
    const bool am_root = me == root;
    std::vector<std::byte> tmp;
    void* acc;
    if (am_root) {
      acc = rbuf;
      if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    } else {
      tmp.resize(bytes);
      std::memcpy(tmp.data(), sbuf, bytes);
      acc = tmp.data();
    }
    if (seg != nullptr) {
      for (std::size_t i = 0; i < seg->slots.size(); ++i) {
        if (i == t.my_pos) continue;
        HierSeg::Slot& s = seg->slots[i];
        wait_flag(h, s.arrive, seq);
        observe_flag(h, s.vtime);
        {
          ChargedSection charged(*h.clock);
          apply_reduce(op, kind, acc, s.ptr, count);
        }
        count_single_copy(h, bytes);
      }
      // Inputs consumed: members' send buffers are theirs again.
      seg->pub_vtime = h.clock->vclock;
      seg->release.store(seq, std::memory_order_release);
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                   /*done_flags=*/true));
    }
    team_reduce(c, t.leaders, team_index(t.leaders, me),
                team_index(t.leaders, root_leader), acc, count, kind, op);
    if (me == root_leader && !am_root)
      c.send(acc, bytes, root, kTagHierRootXfer);
  } else {
    HierSeg::Slot& mineslot = seg->slots[t.my_pos];
    mineslot.ptr = sbuf;
    mineslot.vtime = h.clock->vclock;
    mineslot.arrive.store(seq, std::memory_order_release);
    wait_flag(h, seg->release, seq);
    observe_flag(h, seg->pub_vtime);
    mineslot.vtime_done = h.clock->vclock;
    mineslot.done.store(seq, std::memory_order_release);
    if (me == root) c.recv(rbuf, bytes, root_leader, kTagHierRootXfer);
  }
}

void allreduce(const Comm& c, const void* sbuf, void* rbuf,
               std::size_t count, BasicKind kind, ReduceOp op) {
  const std::size_t bytes = count * basic_size(kind);
  if (c.size() == 1) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    return;
  }
  if (count == 0) return;
  const Ctx h = make_ctx(c);
  h.clock->advance_cpu();
  h.uni->check_self_alive(h.my_world);
  h.uni->entry_checks(h.my_world, h.cid, -1);
  CollSpan span(c, CollAlg::kHierAllreduce);
  const Topo t = topo_of(c, h);
  const int me = c.rank();
  HierSeg* seg = segment_of(t, h);
  const std::uint64_t seq =
      seg != nullptr ? ++seg->slots[t.my_pos].local_seq : 0;

  if (t.is_leader) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    if (seg != nullptr) {
      for (std::size_t i = 0; i < seg->slots.size(); ++i) {
        if (i == t.my_pos) continue;
        HierSeg::Slot& s = seg->slots[i];
        wait_flag(h, s.arrive, seq);
        observe_flag(h, s.vtime);
        {
          ChargedSection charged(*h.clock);
          apply_reduce(op, kind, rbuf, s.ptr, count);
        }
        count_single_copy(h, bytes);
      }
    }
    team_allreduce(c, t.leaders, team_index(t.leaders, me), rbuf, count,
                   kind, op);
    if (seg != nullptr) {
      h.clock->advance_cpu();
      seg->pub_ptr = rbuf;
      seg->pub_vtime = h.clock->vclock;
      seg->release.store(seq, std::memory_order_release);
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                   /*done_flags=*/true));
    }
  } else {
    HierSeg::Slot& mineslot = seg->slots[t.my_pos];
    mineslot.ptr = sbuf;
    mineslot.vtime = h.clock->vclock;
    mineslot.arrive.store(seq, std::memory_order_release);
    // release here means both "input consumed" and "result published":
    // the leader folds before the inter phase and publishes after it.
    wait_flag(h, seg->release, seq);
    observe_flag(h, seg->pub_vtime);
    {
      ChargedSection charged(*h.clock);
      std::memcpy(rbuf, seg->pub_ptr, bytes);
    }
    count_single_copy(h, bytes);
    mineslot.vtime_done = h.clock->vclock;
    mineslot.done.store(seq, std::memory_order_release);
  }
}

void gather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
            int root) {
  if (c.size() == 1) {
    std::memcpy(rbuf, sbuf, bpr);
    return;
  }
  if (bpr == 0) return;
  const Ctx h = make_ctx(c);
  h.clock->advance_cpu();
  h.uni->check_self_alive(h.my_world);
  h.uni->entry_checks(h.my_world, h.cid, -1);
  CollSpan span(c, CollAlg::kHierGather);
  const Topo t = topo_of(c, h);
  const int me = c.rank();
  const int root_group = t.group_of[static_cast<std::size_t>(root)];
  HierSeg* seg = segment_of(t, h);
  const std::uint64_t seq =
      seg != nullptr ? ++seg->slots[t.my_pos].local_seq : 0;
  const auto& mine = t.groups[static_cast<std::size_t>(t.my_group)];
  // The node collector concatenates its node's blocks: the root itself on
  // root's node (blocks land at their final offsets), the leader
  // elsewhere (blocks coalesce into one inter-node message).
  const bool am_collector =
      t.my_group == root_group ? me == root : t.is_leader;

  std::vector<std::byte> staging;
  if (am_collector && seg != nullptr) {
    auto* out = static_cast<std::byte*>(rbuf);
    if (me != root) {
      staging.resize(mine.size() * bpr);
      out = staging.data();
    }
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const int r = mine[i];
      const std::byte* src;
      if (i == t.my_pos) {
        src = static_cast<const std::byte*>(sbuf);
      } else {
        HierSeg::Slot& s = seg->slots[i];
        wait_flag(h, s.arrive, seq);
        observe_flag(h, s.vtime);
        src = static_cast<const std::byte*>(s.ptr);
      }
      std::byte* dst = me == root
                           ? out + static_cast<std::size_t>(r) * bpr
                           : out + i * bpr;
      {
        ChargedSection charged(*h.clock);
        std::memcpy(dst, src, bpr);
      }
      if (i != t.my_pos) count_single_copy(h, bpr);
    }
  } else if (am_collector && me != root) {
    // Alone on my node: my block is the whole inter-node message.
    staging.resize(bpr);
    std::memcpy(staging.data(), sbuf, bpr);
  } else if (am_collector) {
    std::memcpy(static_cast<std::byte*>(rbuf) +
                    static_cast<std::size_t>(me) * bpr,
                sbuf, bpr);
  }

  if (am_collector && !t.is_leader) {
    // Root collected but the leader owns the release flag: hand the
    // "inputs consumed" signal over through my own arrive flag, then
    // wait for the leader's release ack — without it, my next-op
    // re-stamp of this slot would not be ordered after the leader's
    // read of the consumed signal.
    HierSeg::Slot& mineslot = seg->slots[t.my_pos];
    mineslot.vtime = h.clock->vclock;
    mineslot.arrive.store(seq, std::memory_order_release);
    wait_flag(h, seg->release, seq);
    observe_flag(h, seg->pub_vtime);
    mineslot.vtime_done = h.clock->vclock;
    mineslot.done.store(seq, std::memory_order_release);
  }

  if (t.is_leader && seg != nullptr) {
    if (!am_collector && t.my_group == root_group) {
      // Root's node, root != leader: contribute my block, wait for the
      // root's consumed signal, then release on its behalf.
      HierSeg::Slot& mineslot = seg->slots[t.my_pos];
      mineslot.ptr = sbuf;
      mineslot.vtime = h.clock->vclock;
      mineslot.arrive.store(seq, std::memory_order_release);
      const std::size_t root_pos = static_cast<std::size_t>(
          std::lower_bound(mine.begin(), mine.end(), root) - mine.begin());
      HierSeg::Slot& rs = seg->slots[root_pos];
      wait_flag(h, rs.arrive, seq);
      observe_flag(h, rs.vtime);
      seg->pub_vtime = h.clock->vclock;
      seg->release.store(seq, std::memory_order_release);
      // Include the root: it acks done after its release-ack read of
      // pub_vtime, so pub state is safe to rewrite next op.
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                   /*done_flags=*/true));
    } else if (am_collector) {
      seg->pub_vtime = h.clock->vclock;
      seg->release.store(seq, std::memory_order_release);
      observe_flag(h, wait_members(h, *seg, seq, t.my_pos, kNoSkip,
                                   /*done_flags=*/true));
    }
  } else if (!am_collector && seg != nullptr) {
    HierSeg::Slot& mineslot = seg->slots[t.my_pos];
    if (t.my_group != root_group || me != root) {
      mineslot.ptr = sbuf;
      mineslot.vtime = h.clock->vclock;
      mineslot.arrive.store(seq, std::memory_order_release);
      wait_flag(h, seg->release, seq);
      observe_flag(h, seg->pub_vtime);
      mineslot.vtime_done = h.clock->vclock;
      mineslot.done.store(seq, std::memory_order_release);
    }
  }

  // Inter-node phase: one coalesced message per remote node, leader ->
  // root, unpacked by the shared topology.
  if (me == root) {
    std::vector<Request> reqs;
    std::vector<std::vector<std::byte>> blocks;
    for (std::size_t g = 0; g < t.groups.size(); ++g) {
      if (static_cast<int>(g) == root_group) continue;
      blocks.emplace_back(t.groups[g].size() * bpr);
      reqs.push_back(c.irecv(blocks.back().data(), blocks.back().size(),
                             t.leaders[g], kTagHierGather));
    }
    std::size_t b = 0;
    auto* out = static_cast<std::byte*>(rbuf);
    for (std::size_t g = 0; g < t.groups.size(); ++g) {
      if (static_cast<int>(g) == root_group) continue;
      reqs[b].wait();
      ChargedSection charged(*h.clock);
      for (std::size_t i = 0; i < t.groups[g].size(); ++i) {
        std::memcpy(out + static_cast<std::size_t>(t.groups[g][i]) * bpr,
                    blocks[b].data() + i * bpr, bpr);
      }
      ++b;
    }
  } else if (am_collector) {
    c.send(staging.data(), staging.size(), root, kTagHierGather);
  }
}

}  // namespace jhpc::minimpi::detail::hier
