// Root-centric vectored collectives shared by both suites.
#include <cstring>
#include <vector>

#include "detail/coll.hpp"
#include "detail/transport.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail {

void gatherv_linear(const Comm& c, const void* sbuf, std::size_t sbytes,
                    void* rbuf, std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs, int root) {
  CollSpan span(c, CollAlg::kGathervLinear);
  const int size = c.size();
  const int rank = c.rank();
  if (rank == root) {
    JHPC_REQUIRE(counts.size() == static_cast<std::size_t>(size) &&
                     displs.size() == static_cast<std::size_t>(size),
                 "gatherv counts/displs must have comm-size entries");
    auto* out = static_cast<std::byte*>(rbuf);
    const auto me = static_cast<std::size_t>(root);
    JHPC_REQUIRE(sbytes == counts[me],
                 "gatherv: root send size must equal its count");
    std::memcpy(out + displs[me], sbuf, sbytes);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      const auto ri = static_cast<std::size_t>(r);
      reqs.push_back(c.irecv(out + displs[ri], counts[ri], r, kTagGatherv));
    }
    Request::wait_all(reqs);
  } else {
    c.send(sbuf, sbytes, root, kTagGatherv);
  }
}

void scatterv_linear(const Comm& c, const void* sbuf,
                     std::span<const std::size_t> counts,
                     std::span<const std::size_t> displs, void* rbuf,
                     std::size_t rbytes, int root) {
  CollSpan span(c, CollAlg::kScattervLinear);
  const int size = c.size();
  const int rank = c.rank();
  if (rank == root) {
    JHPC_REQUIRE(counts.size() == static_cast<std::size_t>(size) &&
                     displs.size() == static_cast<std::size_t>(size),
                 "scatterv counts/displs must have comm-size entries");
    const auto* in = static_cast<const std::byte*>(sbuf);
    const auto me = static_cast<std::size_t>(root);
    JHPC_REQUIRE(rbytes >= counts[me],
                 "scatterv: root receive buffer too small");
    std::memcpy(rbuf, in + displs[me], counts[me]);
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      const auto ri = static_cast<std::size_t>(r);
      c.send(in + displs[ri], counts[ri], r, kTagScatterv);
    }
  } else {
    c.recv(rbuf, rbytes, root, kTagScatterv);
  }
}

}  // namespace jhpc::minimpi::detail
