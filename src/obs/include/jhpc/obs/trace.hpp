// Virtual-clock event tracing.
//
// Each rank records begin/end events into its own bounded ring buffer,
// stamped with the netsim VIRTUAL clock — traces show simulated cluster
// time (what the paper's figures measure), not host wall time on an
// oversubscribed box. At finalize the rings are merged into Chrome
// trace-event JSON (one track per rank, loadable in chrome://tracing or
// Perfetto). Rings are single-writer: only the owning rank thread pushes;
// flushing happens after the rank threads have joined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jhpc::obs {

/// One begin or end mark. `name` must point at a string literal (or
/// storage outliving the flush); events are 24 bytes and never allocate.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t vtime_ns = 0;  ///< virtual timestamp
  bool is_begin = true;
};

/// Bounded single-writer event ring with oldest-dropped overflow: when
/// full, pushing evicts the oldest event and counts it as dropped, so a
/// trace always holds the most recent window of activity.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  /// Events evicted by overflow since construction/clear().
  std::uint64_t dropped() const { return dropped_; }

  /// Append; returns true when a retained event was evicted to make
  /// room (callers count drops in the obs.trace.dropped pvar).
  bool push(TraceEvent ev);
  void clear();

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Serialize per-rank rings as Chrome trace-event JSON. Timestamps are
/// virtual microseconds; pid is 0 ("the job"), tid is the rank. Overflow
/// can leave unmatched end events at the front of a ring and an abort can
/// leave unclosed begin events at the back; both are repaired here so the
/// emitted "B"/"E" pairs strictly nest per track.
std::string chrome_trace_json(const std::vector<TraceRing>& rings);

/// chrome_trace_json() written to `path`; throws jhpc::Error on I/O
/// failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceRing>& rings);

}  // namespace jhpc::obs
