// Scalasca-style wait-state attribution.
//
// Knowing a rank waited is cheap (mpi.wait_ns); knowing *why* needs the
// two sides of each communication compared on the virtual clock. At a
// transport match point the send-arrival and recv-post timestamps are
// both known, so every completed receive classifies as:
//   late sender   — the receive was posted first; the receiver idled
//                   until the data arrived (charged to the receiver),
//   late receiver — the data arrived first and sat in the unexpected
//                   queue until the receive was posted.
// Collectives get the analogous treatment: each entry is compared
// against the last-arriving member of the group, and the skew is charged
// to every early rank as wait-at-barrier time.
//
// Results surface as `waitstate.*` pvars (counts plus accumulated
// virtual ns, per rank) and zero-width trace marks at the match sites.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "jhpc/obs/pvar.hpp"

namespace jhpc::obs {

/// Wait-state classifier. Registers its pvars on construction; the p2p
/// hooks are lock-free pvar updates, the collective hook keeps a small
/// mutexed rendezvous board keyed by (context id, entry sequence) that
/// resolves as soon as the last group member arrives.
class WaitState {
 public:
  explicit WaitState(PvarRegistry& reg);

  /// A receive completed `wait_ns` of virtual time after it was posted
  /// because the sender's data had not arrived yet. Charged to the
  /// receiving world rank. Any thread.
  void late_sender(int recv_world, std::int64_t wait_ns);

  /// A message sat `wait_ns` in the unexpected queue before the matching
  /// receive was posted. Charged to the receiving world rank.
  void late_receiver(int recv_world, std::int64_t wait_ns);

  /// A rank entered a blocking collective on communicator `context_id`
  /// at virtual time `entry_vns`. `group_world` maps comm rank to world
  /// rank; `my_index` is the entering comm rank. When the whole group
  /// has entered, every early rank is charged (last - own) as
  /// wait-at-barrier skew. Any thread.
  void coll_entry(int context_id, const std::vector<int>& group_world,
                  int my_index, std::int64_t entry_vns);

  /// Drop unresolved collective entries (a failed job can abandon a
  /// board mid-collective; the next job starts clean).
  void reset();

 private:
  PvarRegistry& reg_;
  PvarId late_sender_;
  PvarId late_sender_ns_;
  PvarId late_receiver_;
  PvarId late_receiver_ns_;
  PvarId barrier_;
  PvarId barrier_ns_;

  std::mutex mu_;
  /// Next collective sequence number per (context id, world rank).
  std::map<std::pair<int, int>, std::uint64_t> seq_;
  struct Pending {
    std::vector<std::int64_t> entry;  ///< by comm rank; -1 = not yet in
    std::size_t remaining = 0;
  };
  /// Open rendezvous boards per (context id, sequence).
  std::map<std::pair<int, std::uint64_t>, Pending> pending_;
};

}  // namespace jhpc::obs
