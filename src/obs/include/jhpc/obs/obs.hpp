// The per-job observability recorder: one pvar registry plus one trace
// ring per rank, behind a single enabled/disabled switch.
//
// Cost discipline: a Universe holds a null Recorder pointer when
// observability is off, so every instrumentation site reduces to one
// inline pointer test — no atomics, no branches into this library. With
// the recorder on, pvar updates are relaxed atomic adds and trace pushes
// are single-writer ring stores.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jhpc/obs/pvar.hpp"
#include "jhpc/obs/trace.hpp"
#include "jhpc/support/table.hpp"

namespace jhpc::obs {

/// Observability switches. Off by default; enabled per job via config or
/// the environment (the knobs every binary inherits through
/// support/env): JHPC_PVARS=1, JHPC_TRACE=path, JHPC_TRACE_CAPACITY=n,
/// JHPC_COMM_MATRIX=1, JHPC_COMM_MATRIX_CSV=path, JHPC_PVARS_JSON=path,
/// JHPC_FLIGHT_RECORDER=0|1, JHPC_FLIGHT_RECORDER_CAPACITY=n,
/// JHPC_FLIGHT_RECORDER_DUMP=path.
struct ObsConfig {
  /// Collect performance variables and print the finalize summary table.
  bool pvars = false;
  /// When non-empty, record trace events and flush Chrome trace-event
  /// JSON to this path at finalize.
  std::string trace_path;
  /// Per-rank trace ring capacity (events); oldest dropped on overflow.
  std::size_t trace_capacity = 64 * 1024;
  /// Track per-(src,dst) message/byte counts and print the finalize
  /// heatmap table.
  bool comm_matrix = false;
  /// When non-empty, also write the matrix as CSV (implies collection).
  std::string comm_matrix_csv;
  /// When non-empty, write a machine-readable JSON dump of every pvar,
  /// histogram and the comm matrix at finalize (implies collection).
  std::string pvars_json_path;
  /// Keep the flight recorder armed whenever observability is on. Cheap
  /// enough to leave on; set to false to opt out.
  bool flight_recorder = true;
  /// Per-rank flight-recorder ring capacity (events).
  std::size_t flight_capacity = 256;
  /// When non-empty, the failure dump is also appended to this file (it
  /// always goes to stderr). Setting it by itself arms observability.
  std::string flight_dump_path;
  /// Collect without the finalize stderr tables. The jhpcd service arms
  /// pvars on tenant jobs to poll quotas (transport counters only exist
  /// when observability is on); thousands of short jobs must not each
  /// print a summary. Failure dumps and file outputs are unaffected.
  bool quiet = false;

  bool enabled() const {
    return pvars || !trace_path.empty() || comm_matrix ||
           !comm_matrix_csv.empty() || !pvars_json_path.empty() ||
           !flight_dump_path.empty();
  }

  /// Defaults overlaid with the JHPC_* knobs above. Capacities are
  /// validated like every other env knob: non-numeric or non-positive
  /// values raise InvalidArgumentError instead of arming a zero-sized
  /// ring.
  static ObsConfig from_env();
};

/// Per-(src,dst) traffic accounting: messages and payload bytes, updated
/// with relaxed atomics from the transport's send path.
class CommMatrix {
 public:
  explicit CommMatrix(int ranks);

  int ranks() const { return ranks_; }
  void record(int src, int dst, std::int64_t bytes);
  std::int64_t msgs(int src, int dst) const;
  std::int64_t bytes(int src, int dst) const;
  void reset();

  /// Heatmap table: one row per source rank, cells "msgs/bytes".
  Table to_table() const;
  /// Long-form table (src,dst,msgs,bytes), one row per nonzero pair —
  /// the CSV shape benchmarks diff across runs.
  Table to_pairs_table() const;
  /// to_pairs_table() written as CSV; throws jhpc::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::size_t cell(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(ranks_) +
           static_cast<std::size_t>(dst);
  }
  int ranks_;
  std::unique_ptr<std::atomic<std::int64_t>[]> msgs_;   // [ranks^2]
  std::unique_ptr<std::atomic<std::int64_t>[]> bytes_;  // [ranks^2]
};

/// Everything one job records. Thread-safety contract: pvar updates may
/// come from any rank thread (atomics); begin()/end() for rank r must
/// come from rank r's thread only; flush/summary run after the rank
/// threads joined.
class Recorder {
 public:
  Recorder(const ObsConfig& config, int ranks);

  const ObsConfig& config() const { return config_; }
  bool tracing() const { return !config_.trace_path.empty(); }

  PvarRegistry& pvars() { return pvars_; }
  const PvarRegistry& pvars() const { return pvars_; }

  /// The comm matrix, or nullptr when not collecting one.
  CommMatrix* matrix() { return matrix_.get(); }
  const CommMatrix* matrix() const { return matrix_.get(); }

  /// Record a span boundary on rank `rank` at virtual time `vtime_ns`.
  /// No-ops when tracing is off, so callers only guard on the Recorder
  /// pointer itself. The tracer self-reports through the
  /// obs.trace.events / obs.trace.dropped pvars so overflow is never
  /// silent.
  void begin(int rank, const char* name, std::int64_t vtime_ns);
  void end(int rank, const char* name, std::int64_t vtime_ns);

  const std::vector<TraceRing>& rings() const { return rings_; }
  /// Trace events evicted across all ranks.
  std::uint64_t dropped_events() const;

  /// Zero pvar values, clear rings and the matrix (a Universe reuses its
  /// Recorder across run() calls; each job reports its own workload).
  void reset();

  /// Finalize-time summary: every pvar (including the tracer's own).
  Table summary_table() const;

  /// Write the Chrome trace JSON to config().trace_path.
  void write_trace() const;

  /// Write a machine-readable JSON dump (pvars with class/unit/values,
  /// histograms with percentiles, comm matrix when collected) to `path`;
  /// throws jhpc::Error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  ObsConfig config_;
  PvarRegistry pvars_;
  std::vector<TraceRing> rings_;  // one per rank; empty when not tracing
  std::unique_ptr<CommMatrix> matrix_;
  PvarId trace_events_;   // registered only when tracing
  PvarId trace_dropped_;
};

}  // namespace jhpc::obs
