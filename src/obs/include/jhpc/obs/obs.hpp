// The per-job observability recorder: one pvar registry plus one trace
// ring per rank, behind a single enabled/disabled switch.
//
// Cost discipline: a Universe holds a null Recorder pointer when
// observability is off, so every instrumentation site reduces to one
// inline pointer test — no atomics, no branches into this library. With
// the recorder on, pvar updates are relaxed atomic adds and trace pushes
// are single-writer ring stores.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jhpc/obs/pvar.hpp"
#include "jhpc/obs/trace.hpp"
#include "jhpc/support/table.hpp"

namespace jhpc::obs {

/// Observability switches. Off by default; enabled per job via config or
/// the environment (the knobs every binary inherits through
/// support/env): JHPC_PVARS=1, JHPC_TRACE=path, JHPC_TRACE_CAPACITY=n.
struct ObsConfig {
  /// Collect performance variables and print the finalize summary table.
  bool pvars = false;
  /// When non-empty, record trace events and flush Chrome trace-event
  /// JSON to this path at finalize.
  std::string trace_path;
  /// Per-rank trace ring capacity (events); oldest dropped on overflow.
  std::size_t trace_capacity = 64 * 1024;

  bool enabled() const { return pvars || !trace_path.empty(); }

  /// Defaults overlaid with JHPC_PVARS / JHPC_TRACE /
  /// JHPC_TRACE_CAPACITY.
  static ObsConfig from_env();
};

/// Everything one job records. Thread-safety contract: pvar updates may
/// come from any rank thread (atomics); begin()/end() for rank r must
/// come from rank r's thread only; flush/summary run after the rank
/// threads joined.
class Recorder {
 public:
  Recorder(const ObsConfig& config, int ranks);

  const ObsConfig& config() const { return config_; }
  bool tracing() const { return !config_.trace_path.empty(); }

  PvarRegistry& pvars() { return pvars_; }
  const PvarRegistry& pvars() const { return pvars_; }

  /// Record a span boundary on rank `rank` at virtual time `vtime_ns`.
  /// No-ops when tracing is off, so callers only guard on the Recorder
  /// pointer itself.
  void begin(int rank, const char* name, std::int64_t vtime_ns);
  void end(int rank, const char* name, std::int64_t vtime_ns);

  const std::vector<TraceRing>& rings() const { return rings_; }
  /// Trace events evicted across all ranks.
  std::uint64_t dropped_events() const;

  /// Zero pvar values and clear rings (a Universe reuses its Recorder
  /// across run() calls; each job reports its own workload).
  void reset();

  /// Finalize-time summary: every pvar plus the tracer's own counters.
  Table summary_table() const;

  /// Write the Chrome trace JSON to config().trace_path.
  void write_trace() const;

 private:
  ObsConfig config_;
  PvarRegistry pvars_;
  std::vector<TraceRing> rings_;  // one per rank; empty when not tracing
};

}  // namespace jhpc::obs
