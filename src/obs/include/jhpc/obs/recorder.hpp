// Black-box flight recorder for protocol post-mortems.
//
// A typed error says *what* failed; the flight recorder says what every
// involved rank was doing just before. Each rank keeps a small bounded
// ring of recent protocol events (posts, matches, sends, acks,
// retransmits, timeouts, kills, revokes). Recording is a mutex-guarded
// ring store — events are rare relative to data movement, contention is
// nil, and unlike the trace rings any thread may record on any rank's
// ring (a kill lands on the victim's ring from the reaper thread). When
// a job dies with TransportTimeoutError / RankFailedError, the Universe
// dumps every non-empty ring as a readable report.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jhpc::obs {

/// Protocol event kinds, ordered roughly by message lifecycle.
enum class FlightKind : std::uint8_t {
  kPost,        ///< receive posted (arg = buffer capacity bytes)
  kMatch,       ///< receive matched a message (arg = payload bytes)
  kEagerSend,   ///< eager-protocol send issued (arg = payload bytes)
  kRndvSend,    ///< rendezvous-protocol send issued (arg = payload bytes)
  kAck,         ///< reliable-delivery ack received (arg = sequence)
  kRetransmit,  ///< reliable-delivery retransmit fired (arg = sequence)
  kTimeout,     ///< delivery timeout declared (arg = sequence)
  kKill,        ///< this rank was fail-stopped
  kRevoke,      ///< a communicator was revoked (arg = context id)
  kRmaPut,      ///< one-sided put issued (arg = payload bytes)
  kRmaGet,      ///< one-sided get issued (arg = payload bytes)
  kRmaAcc,      ///< one-sided accumulate/fetch_op applied (arg = bytes)
  kRmaSync,     ///< RMA epoch closed (arg = ops completed in the epoch)
  // jhpcd scheduler events (service ring: rank 0, service wall clock,
  // arg = job id, peer = priority, tag = fairness class).
  kJobAdmit,      ///< job accepted into the admission queue
  kJobReject,     ///< job refused (queue full / shed-load / quota)
  kJobQuotaTrip,  ///< a running job's quota tripped (being killed)
  kJobDrain,      ///< job left the fleet (completed, failed or shed)
};

const char* flight_kind_name(FlightKind kind);

/// One recorded protocol event. `arg` is bytes for post/match/send
/// kinds, a sequence number for ack/retransmit/timeout, and a context id
/// for revoke (see flight_kind_name for rendering).
struct FlightEvent {
  std::int64_t vtime_ns = 0;
  std::int64_t arg = 0;
  std::int32_t peer = -1;  ///< world rank of the other side; -1 = n/a
  std::int32_t tag = -1;   ///< message tag; -1 = n/a
  FlightKind kind = FlightKind::kPost;
};

/// Per-rank bounded event rings. Construct with capacity 0 to disable:
/// every record() is then a single size check, so call sites need no
/// extra guard beyond the observability pointer itself.
class FlightRecorder {
 public:
  FlightRecorder(std::size_t capacity, int ranks);

  bool on() const { return !rings_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Append to `rank`'s ring, evicting the oldest on overflow. Any
  /// thread; no-op when disabled.
  void record(int rank, FlightEvent ev);

  /// Retained events for one rank, oldest first.
  std::vector<FlightEvent> events(int rank) const;

  /// True when no rank has recorded anything.
  bool empty() const;

  /// Drop all events (job reset).
  void clear();

  /// Human-readable dump: the involved ranks and each one's last events,
  /// oldest first. Empty string when nothing was recorded.
  std::string report() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<FlightEvent> buf;
    std::size_t head = 0;
    std::size_t size = 0;
  };
  std::size_t capacity_ = 0;
  std::vector<std::unique_ptr<Ring>> rings_;  // empty when disabled
};

}  // namespace jhpc::obs
