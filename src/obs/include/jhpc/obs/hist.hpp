// HDR-style log-bucketed histograms for pvar distributions.
//
// A single accumulated timer cannot distinguish a p99 outlier from a
// uniform slowdown; the benchmarking literature around Java/IB stacks
// (and MVAPICH2's own OSU INAM counters) reports percentiles for exactly
// that reason. This header holds the pure bucket math: values (virtual
// nanoseconds, or bytes) map into a fixed array of logarithmic buckets,
// two per octave, so the storage is bounded, the hot path is a shift and
// an add, and every bucket's lower bound is exact — which keeps the
// percentile math deterministic and unit-testable under JHPC_DET_CLOCK.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace jhpc::obs {

/// Fixed bucket count. Two buckets per octave over the full positive
/// int64 range needs 2*62+2 = 126 slots; 128 leaves headroom and keeps
/// the per-rank stride cache-line friendly.
inline constexpr std::size_t kHistBuckets = 128;

/// Bucket index for a recorded value.
///   v <= 0      -> bucket 0
///   v == 1      -> bucket 1
///   otherwise   -> bucket 2k + s where k = floor(log2 v) and s selects
///                  the upper half-octave [1.5 * 2^k, 2^(k+1)).
std::size_t hist_bucket_index(std::int64_t v);

/// Exact lower bound of a bucket (0 for bucket 0). Percentiles report
/// this bound, so a histogram never over-states a quantile and the
/// expected output of a test is a closed-form integer.
std::int64_t hist_bucket_floor(std::size_t index);

/// A decoded histogram: per-bucket counts plus exact count/sum/max.
/// Readable per rank or merged across ranks.
struct HistReading {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  std::array<std::int64_t, kHistBuckets> buckets{};

  /// Accumulate another rank's reading into this one.
  void merge(const HistReading& other);

  /// The p-th percentile (0 < p <= 100) as the lower bound of the first
  /// bucket whose cumulative count reaches ceil(p/100 * count). p >= 100
  /// returns the exact tracked max; an empty histogram returns 0.
  std::int64_t percentile(double p) const;

  /// Mean of the recorded values (exact, from sum/count); 0 when empty.
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

}  // namespace jhpc::obs
