// MPI_T-style performance variables ("pvars").
//
// Real MPI stacks expose internal counters through the MPI_T tool
// information interface (MVAPICH2 ships exactly such counters for OSU
// INAM). This registry is that idea scaled to the simulation: modules
// register named per-rank variables once (cold path, mutexed) and then
// update them from rank threads with relaxed atomics (hot path,
// lock-free). Tools — the bindings' query API, the finalize summary, the
// tests — snapshot the registry by name at any time.
//
// Unit contract: a pvar stores raw integers in its registered PvarUnit.
// Timers and histograms default to VIRTUAL NANOSECONDS, and every raw
// read path (read(), total(), snapshot(), the bindings' readPvar /
// readHistogram) returns those raw units unchanged. Only the rendered
// finalize tables (to_table(), hist_table()) convert nanoseconds to
// microseconds for display. Tools should consult Reading::unit instead
// of guessing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "jhpc/obs/hist.hpp"
#include "jhpc/support/table.hpp"

namespace jhpc::obs {

/// MPI_T-like variable classes. Counters, levels and timers share the
/// storage (a per-rank int64) and differ only in semantics and summary
/// formatting; histograms additionally carry per-rank bucket arrays.
enum class PvarClass : std::uint8_t {
  kCounter,    ///< monotonically increasing count (messages, pool hits)
  kLevel,      ///< instantaneous level tracked as a high-water mark
  kTimer,      ///< accumulated duration in virtual nanoseconds
  kHistogram,  ///< log-bucketed distribution of recorded values
};

const char* pvar_class_name(PvarClass cls);

/// The unit of a pvar's raw values (see the unit contract above).
enum class PvarUnit : std::uint8_t {
  kNone,         ///< dimensionless (counts, levels)
  kNanoseconds,  ///< virtual nanoseconds
  kBytes,        ///< payload bytes
};

const char* pvar_unit_name(PvarUnit unit);

/// Opaque handle returned by registration; indexes the registry's slot
/// table. The default-constructed handle is invalid and every update
/// through it is ignored — instrumentation sites may hold handles
/// unconditionally and stay inert when observability is off.
struct PvarId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index = kInvalid;
  bool valid() const { return index != kInvalid; }
};

/// Lock-free per-rank performance-variable registry.
///
/// Registration is find-or-create by name and may run concurrently from
/// rank threads (each rank's Env binds its own pool, for instance); the
/// hot-path update functions never take the mutex. The slot table is
/// sized at construction so handles stay stable and updates race only on
/// their own atomic cell.
class PvarRegistry {
 public:
  /// `ranks`: one value slot per world rank. `capacity`: maximum number
  /// of distinct pvars (fixed so registration never relocates slots).
  explicit PvarRegistry(int ranks, std::size_t capacity = 256);

  int ranks() const { return ranks_; }
  /// Number of registered pvars.
  std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Find-or-create `name`. Re-registering an existing name returns the
  /// existing handle (the class/description/unit of the first wins).
  /// Timers and histograms default to kNanoseconds when no unit is
  /// given. Throws jhpc::Error when the fixed capacity is exhausted.
  PvarId register_pvar(const std::string& name, PvarClass cls,
                       const std::string& description,
                       PvarUnit unit = PvarUnit::kNone);

  /// Handle lookup by name; invalid handle when unknown.
  PvarId find(const std::string& name) const;

  // --- Hot path (relaxed atomics; invalid handles are ignored) -----------
  /// Add `delta` to (pvar, rank). Counters and timers.
  void add(PvarId id, int rank, std::int64_t delta);
  /// Raise (pvar, rank) to `value` if larger. Levels (high-water marks).
  void raise(PvarId id, int rank, std::int64_t value);
  /// Record one sample into a histogram pvar: bumps the rank's count,
  /// sum, max and the value's log bucket. Ignored for other classes.
  void record(PvarId id, int rank, std::int64_t value);

  /// Current value of (pvar, rank); 0 for invalid handles. For
  /// histograms this is the sample count.
  std::int64_t read(PvarId id, int rank) const;
  /// Sum over all ranks.
  std::int64_t total(PvarId id) const;

  /// Decode one rank's histogram; empty reading for invalid handles or
  /// non-histogram pvars.
  HistReading read_hist(PvarId id, int rank) const;
  /// All ranks merged.
  HistReading hist_total(PvarId id) const;

  /// One registered variable with its per-rank values at snapshot time.
  struct Reading {
    std::string name;
    PvarClass cls = PvarClass::kCounter;
    PvarUnit unit = PvarUnit::kNone;
    std::string description;
    std::vector<std::int64_t> values;  ///< indexed by rank
    std::int64_t total = 0;
  };
  /// Snapshot every registered pvar (registration order).
  std::vector<Reading> snapshot() const;

  /// Zero every value (registrations survive). Used when a Universe
  /// starts a new job so each run reports its own workload.
  void reset_values();

  /// Render a summary: one row per pvar, one column per rank plus a
  /// total. Timers are shown in microseconds; histograms show their
  /// per-rank sample counts (hist_table() has the distributions).
  Table to_table() const;

  /// Render the registered histograms: one row per histogram pvar with
  /// sample count and p50/p90/p99/max merged across ranks. Nanosecond
  /// histograms are shown in microseconds; other units stay raw.
  Table hist_table() const;
  /// True when any histogram pvar is registered.
  bool has_histograms() const;

 private:
  struct Slot {
    std::string name;
    PvarClass cls = PvarClass::kCounter;
    PvarUnit unit = PvarUnit::kNone;
    std::string description;
    std::unique_ptr<std::atomic<std::int64_t>[]> values;  // [ranks_]
    // Histogram slots only: per rank, kHistBuckets bucket cells followed
    // by a sum cell and a max cell (count lives in `values`).
    std::unique_ptr<std::atomic<std::int64_t>[]> hist;
  };
  static constexpr std::size_t kHistStride = kHistBuckets + 2;

  int ranks_;
  std::vector<Slot> slots_;             // fixed size; filled up to count_
  std::atomic<std::uint32_t> count_{0};
  mutable std::mutex register_mu_;      // guards registration/find only
};

}  // namespace jhpc::obs
