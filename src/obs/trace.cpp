#include "jhpc/obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "jhpc/support/error.hpp"

namespace jhpc::obs {

TraceRing::TraceRing(std::size_t capacity) : buf_(capacity) {
  JHPC_REQUIRE(capacity >= 1, "trace ring capacity must be positive");
}

bool TraceRing::push(TraceEvent ev) {
  if (size_ == buf_.size()) {
    // Full: evict the oldest so the ring keeps the most recent window.
    buf_[head_] = ev;
    head_ = (head_ + 1) % buf_.size();
    ++dropped_;
    return true;
  }
  buf_[(head_ + size_) % buf_.size()] = ev;
  ++size_;
  return false;
}

void TraceRing::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  return out;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void append_event(std::string& out, bool& first, const char* name,
                  char phase, std::int64_t vtime_ns, int rank) {
  if (!first) out += ",\n";
  first = false;
  char buf[64];
  // Chrome's ts unit is microseconds; keep ns resolution as fractions.
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(vtime_ns) / 1e3);
  out += R"({"name":")";
  append_escaped(out, name);
  out += R"(","ph":")";
  out.push_back(phase);
  out += R"(","ts":)";
  out += buf;
  out += R"(,"pid":0,"tid":)";
  out += std::to_string(rank);
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceRing>& rings) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t rank = 0; rank < rings.size(); ++rank) {
    const int tid = static_cast<int>(rank);
    // Track naming metadata so viewers label tracks "rank N".
    if (!first) out += ",\n";
    first = false;
    out += R"({"name":"thread_name","ph":"M","pid":0,"tid":)";
    out += std::to_string(tid);
    out += R"(,"args":{"name":"rank )";
    out += std::to_string(tid);
    out += "\"}}";

    // Repair the stream so B/E strictly nest: overflow eviction can strand
    // end events at the front (begin dropped) and aborts can strand begin
    // events at the back (end never recorded).
    std::vector<TraceEvent> open;
    std::int64_t last_ts = 0;
    for (const TraceEvent& ev : rings[rank].events()) {
      if (ev.vtime_ns > last_ts) last_ts = ev.vtime_ns;
      if (ev.is_begin) {
        open.push_back(ev);
        append_event(out, first, ev.name, 'B', ev.vtime_ns, tid);
      } else {
        if (open.empty()) continue;  // begin was evicted; drop the end
        open.pop_back();
        append_event(out, first, ev.name, 'E', ev.vtime_ns, tid);
      }
    }
    while (!open.empty()) {
      append_event(out, first, open.back().name, 'E', last_ts, tid);
      open.pop_back();
    }
  }
  out += "\n],\"displayTimeUnit\":\"ns\",";
  out += R"x("otherData":{"clock":"virtual (netsim)","source":"jhpc::obs"}})x";
  out += "\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceRing>& rings) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  JHPC_REQUIRE(f.good(), "cannot open trace file for writing: " + path);
  const std::string json = chrome_trace_json(rings);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  JHPC_REQUIRE(f.good(), "failed to write trace file: " + path);
}

}  // namespace jhpc::obs
