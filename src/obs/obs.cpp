#include "jhpc/obs/obs.hpp"

#include <cstdio>
#include <fstream>

#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::obs {

namespace {

/// Env capacity knob: numeric and strictly positive, or
/// InvalidArgumentError naming the knob (support/env's validated helper).
std::size_t env_capacity(const char* name, std::size_t default_value) {
  return static_cast<std::size_t>(env_int64_range(
      name, static_cast<std::int64_t>(default_value), /*min_value=*/1));
}

}  // namespace

ObsConfig ObsConfig::from_env() {
  ObsConfig cfg;
  cfg.pvars = env_bool("JHPC_PVARS", cfg.pvars);
  cfg.trace_path = env_string("JHPC_TRACE").value_or(cfg.trace_path);
  cfg.trace_capacity = env_capacity("JHPC_TRACE_CAPACITY",
                                    cfg.trace_capacity);
  cfg.comm_matrix = env_bool("JHPC_COMM_MATRIX", cfg.comm_matrix);
  cfg.comm_matrix_csv =
      env_string("JHPC_COMM_MATRIX_CSV").value_or(cfg.comm_matrix_csv);
  cfg.pvars_json_path =
      env_string("JHPC_PVARS_JSON").value_or(cfg.pvars_json_path);
  cfg.flight_recorder =
      env_bool("JHPC_FLIGHT_RECORDER", cfg.flight_recorder);
  cfg.flight_capacity = env_capacity("JHPC_FLIGHT_RECORDER_CAPACITY",
                                     cfg.flight_capacity);
  cfg.flight_dump_path =
      env_string("JHPC_FLIGHT_RECORDER_DUMP").value_or(cfg.flight_dump_path);
  return cfg;
}

CommMatrix::CommMatrix(int ranks) : ranks_(ranks) {
  JHPC_REQUIRE(ranks >= 1, "CommMatrix needs at least one rank");
  const std::size_t cells =
      static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks);
  msgs_ = std::make_unique<std::atomic<std::int64_t>[]>(cells);
  bytes_ = std::make_unique<std::atomic<std::int64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    msgs_[i].store(0, std::memory_order_relaxed);
    bytes_[i].store(0, std::memory_order_relaxed);
  }
}

void CommMatrix::record(int src, int dst, std::int64_t bytes) {
  const std::size_t i = cell(src, dst);
  msgs_[i].fetch_add(1, std::memory_order_relaxed);
  bytes_[i].fetch_add(bytes, std::memory_order_relaxed);
}

std::int64_t CommMatrix::msgs(int src, int dst) const {
  return msgs_[cell(src, dst)].load(std::memory_order_relaxed);
}

std::int64_t CommMatrix::bytes(int src, int dst) const {
  return bytes_[cell(src, dst)].load(std::memory_order_relaxed);
}

void CommMatrix::reset() {
  const std::size_t cells =
      static_cast<std::size_t>(ranks_) * static_cast<std::size_t>(ranks_);
  for (std::size_t i = 0; i < cells; ++i) {
    msgs_[i].store(0, std::memory_order_relaxed);
    bytes_[i].store(0, std::memory_order_relaxed);
  }
}

Table CommMatrix::to_table() const {
  std::vector<std::string> headers{"src\\dst"};
  for (int d = 0; d < ranks_; ++d)
    headers.push_back("rank" + std::to_string(d));
  Table table(std::move(headers));
  for (int s = 0; s < ranks_; ++s) {
    std::vector<std::string> row{"rank" + std::to_string(s)};
    for (int d = 0; d < ranks_; ++d) {
      const std::int64_t m = msgs(s, d);
      row.push_back(m == 0 ? "-"
                           : std::to_string(m) + "/" +
                                 std::to_string(bytes(s, d)));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table CommMatrix::to_pairs_table() const {
  Table table({"src", "dst", "msgs", "bytes"});
  for (int s = 0; s < ranks_; ++s) {
    for (int d = 0; d < ranks_; ++d) {
      const std::int64_t m = msgs(s, d);
      if (m == 0) continue;
      table.add_row({std::to_string(s), std::to_string(d),
                     std::to_string(m), std::to_string(bytes(s, d))});
    }
  }
  return table;
}

void CommMatrix::write_csv(const std::string& path) const {
  to_pairs_table().write_csv(path);
}

Recorder::Recorder(const ObsConfig& config, int ranks)
    : config_(config), pvars_(ranks) {
  if (tracing()) {
    rings_.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r)
      rings_.emplace_back(config_.trace_capacity);
    // The tracer reports on itself so overflow is never silent.
    trace_events_ =
        pvars_.register_pvar("obs.trace.events", PvarClass::kCounter,
                             "trace span boundaries recorded");
    trace_dropped_ =
        pvars_.register_pvar("obs.trace.dropped", PvarClass::kCounter,
                             "trace events evicted by ring overflow");
  }
  if (config_.comm_matrix || !config_.comm_matrix_csv.empty())
    matrix_ = std::make_unique<CommMatrix>(ranks);
}

void Recorder::begin(int rank, const char* name, std::int64_t vtime_ns) {
  if (rings_.empty()) return;
  const bool evicted = rings_[static_cast<std::size_t>(rank)].push(
      TraceEvent{name, vtime_ns, /*is_begin=*/true});
  pvars_.add(trace_events_, rank, 1);
  if (evicted) pvars_.add(trace_dropped_, rank, 1);
}

void Recorder::end(int rank, const char* name, std::int64_t vtime_ns) {
  if (rings_.empty()) return;
  const bool evicted = rings_[static_cast<std::size_t>(rank)].push(
      TraceEvent{name, vtime_ns, /*is_begin=*/false});
  pvars_.add(trace_events_, rank, 1);
  if (evicted) pvars_.add(trace_dropped_, rank, 1);
}

std::uint64_t Recorder::dropped_events() const {
  std::uint64_t total = 0;
  for (const TraceRing& ring : rings_) total += ring.dropped();
  return total;
}

void Recorder::reset() {
  pvars_.reset_values();
  for (TraceRing& ring : rings_) ring.clear();
  if (matrix_ != nullptr) matrix_->reset();
}

Table Recorder::summary_table() const { return pvars_.to_table(); }

void Recorder::write_trace() const {
  JHPC_REQUIRE(tracing(), "write_trace() with tracing disabled");
  write_chrome_trace(config_.trace_path, rings_);
}

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

void Recorder::write_json(const std::string& path) const {
  std::string out = "{\n";
  out += "\"ranks\": " + std::to_string(pvars_.ranks()) + ",\n";

  out += "\"pvars\": [\n";
  bool first = true;
  const auto readings = pvars_.snapshot();
  for (const PvarRegistry::Reading& r : readings) {
    if (!first) out += ",\n";
    first = false;
    out += R"({"name": ")";
    json_escape(out, r.name);
    out += R"(", "class": ")";
    out += pvar_class_name(r.cls);
    out += R"(", "unit": ")";
    out += pvar_unit_name(r.unit);
    out += R"(", "values": [)";
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(r.values[i]);
    }
    out += "], \"total\": " + std::to_string(r.total) + "}";
  }
  out += "\n],\n";

  out += "\"histograms\": [\n";
  first = true;
  for (const PvarRegistry::Reading& r : readings) {
    if (r.cls != PvarClass::kHistogram) continue;
    const HistReading h = pvars_.hist_total(pvars_.find(r.name));
    if (!first) out += ",\n";
    first = false;
    out += R"({"name": ")";
    json_escape(out, r.name);
    out += R"(", "unit": ")";
    out += pvar_unit_name(r.unit);
    out += "\", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"p50\": " + std::to_string(h.percentile(50));
    out += ", \"p90\": " + std::to_string(h.percentile(90));
    out += ", \"p99\": " + std::to_string(h.percentile(99));
    out += ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += "\n]";

  if (matrix_ != nullptr) {
    out += ",\n\"comm_matrix\": [\n";
    first = true;
    for (int s = 0; s < matrix_->ranks(); ++s) {
      for (int d = 0; d < matrix_->ranks(); ++d) {
        const std::int64_t m = matrix_->msgs(s, d);
        if (m == 0) continue;
        if (!first) out += ",\n";
        first = false;
        out += "{\"src\": " + std::to_string(s);
        out += ", \"dst\": " + std::to_string(d);
        out += ", \"msgs\": " + std::to_string(m);
        out += ", \"bytes\": " + std::to_string(matrix_->bytes(s, d)) + "}";
      }
    }
    out += "\n]";
  }
  if (!rings_.empty()) {
    out += ",\n\"trace\": {\"dropped\": " +
           std::to_string(dropped_events()) + "}";
  }
  out += "\n}\n";

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  JHPC_REQUIRE(f.good(), "cannot open pvars JSON file for writing: " + path);
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  JHPC_REQUIRE(f.good(), "failed to write pvars JSON file: " + path);
}

}  // namespace jhpc::obs
