#include "jhpc/obs/obs.hpp"

#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::obs {

ObsConfig ObsConfig::from_env() {
  ObsConfig cfg;
  cfg.pvars = env_bool("JHPC_PVARS", cfg.pvars);
  cfg.trace_path = env_string("JHPC_TRACE").value_or(cfg.trace_path);
  cfg.trace_capacity = static_cast<std::size_t>(
      env_int64("JHPC_TRACE_CAPACITY",
                static_cast<std::int64_t>(cfg.trace_capacity)));
  return cfg;
}

Recorder::Recorder(const ObsConfig& config, int ranks)
    : config_(config), pvars_(ranks) {
  if (tracing()) {
    rings_.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r)
      rings_.emplace_back(config_.trace_capacity);
  }
}

void Recorder::begin(int rank, const char* name, std::int64_t vtime_ns) {
  if (rings_.empty()) return;
  rings_[static_cast<std::size_t>(rank)].push(
      TraceEvent{name, vtime_ns, /*is_begin=*/true});
}

void Recorder::end(int rank, const char* name, std::int64_t vtime_ns) {
  if (rings_.empty()) return;
  rings_[static_cast<std::size_t>(rank)].push(
      TraceEvent{name, vtime_ns, /*is_begin=*/false});
}

std::uint64_t Recorder::dropped_events() const {
  std::uint64_t total = 0;
  for (const TraceRing& ring : rings_) total += ring.dropped();
  return total;
}

void Recorder::reset() {
  pvars_.reset_values();
  for (TraceRing& ring : rings_) ring.clear();
}

Table Recorder::summary_table() const {
  Table table = pvars_.to_table();
  if (tracing()) {
    // The tracer reports on itself so overflow is never silent.
    std::vector<std::string> retained{"obs.trace.events", "counter"};
    std::vector<std::string> dropped{"obs.trace.dropped", "counter"};
    std::uint64_t retained_total = 0;
    std::uint64_t dropped_total = 0;
    for (const TraceRing& ring : rings_) {
      retained.push_back(std::to_string(ring.size()));
      dropped.push_back(std::to_string(ring.dropped()));
      retained_total += ring.size();
      dropped_total += ring.dropped();
    }
    retained.push_back(std::to_string(retained_total));
    dropped.push_back(std::to_string(dropped_total));
    table.add_row(std::move(retained));
    table.add_row(std::move(dropped));
  }
  return table;
}

void Recorder::write_trace() const {
  JHPC_REQUIRE(tracing(), "write_trace() with tracing disabled");
  write_chrome_trace(config_.trace_path, rings_);
}

}  // namespace jhpc::obs
