#include "jhpc/obs/hist.hpp"

#include <bit>
#include <cmath>

namespace jhpc::obs {

std::size_t hist_bucket_index(std::int64_t v) {
  if (v <= 0) return 0;
  if (v == 1) return 1;
  const auto u = static_cast<std::uint64_t>(v);
  const std::size_t k =
      static_cast<std::size_t>(std::bit_width(u)) - 1;  // floor(log2 v)
  // Upper half-octave when the bit below the leading bit is set, i.e.
  // v >= 1.5 * 2^k.
  const std::size_t s = (u >> (k - 1)) & 1u;
  return 2 * k + s;
}

std::int64_t hist_bucket_floor(std::size_t index) {
  if (index == 0) return 0;
  if (index == 1) return 1;
  const std::size_t k = index / 2;
  const std::size_t s = index % 2;
  const std::int64_t base = std::int64_t{1} << k;
  return s == 0 ? base : base + (base >> 1);
}

void HistReading::merge(const HistReading& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (std::size_t i = 0; i < kHistBuckets; ++i)
    buckets[i] += other.buckets[i];
}

std::int64_t HistReading::percentile(double p) const {
  if (count == 0) return 0;
  if (p >= 100.0) return max;
  if (p <= 0.0) p = 0.0;
  auto target = static_cast<std::int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (target < 1) target = 1;
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    cum += buckets[i];
    if (cum >= target) return hist_bucket_floor(i);
  }
  return max;
}

}  // namespace jhpc::obs
