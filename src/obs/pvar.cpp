#include "jhpc/obs/pvar.hpp"

#include "jhpc/support/error.hpp"

namespace jhpc::obs {

const char* pvar_class_name(PvarClass cls) {
  switch (cls) {
    case PvarClass::kCounter: return "counter";
    case PvarClass::kLevel: return "level";
    case PvarClass::kTimer: return "timer";
    case PvarClass::kHistogram: return "histogram";
  }
  return "?";
}

const char* pvar_unit_name(PvarUnit unit) {
  switch (unit) {
    case PvarUnit::kNone: return "none";
    case PvarUnit::kNanoseconds: return "ns";
    case PvarUnit::kBytes: return "bytes";
  }
  return "?";
}

PvarRegistry::PvarRegistry(int ranks, std::size_t capacity)
    : ranks_(ranks), slots_(capacity) {
  JHPC_REQUIRE(ranks >= 1, "PvarRegistry needs at least one rank");
  JHPC_REQUIRE(capacity >= 1, "PvarRegistry capacity must be positive");
}

PvarId PvarRegistry::register_pvar(const std::string& name, PvarClass cls,
                                   const std::string& description,
                                   PvarUnit unit) {
  std::lock_guard<std::mutex> lk(register_mu_);
  const std::uint32_t n = count_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (slots_[i].name == name) return PvarId{i};
  }
  JHPC_REQUIRE(n < slots_.size(), "pvar registry capacity exhausted");
  if (unit == PvarUnit::kNone &&
      (cls == PvarClass::kTimer || cls == PvarClass::kHistogram)) {
    unit = PvarUnit::kNanoseconds;
  }
  Slot& slot = slots_[n];
  slot.name = name;
  slot.cls = cls;
  slot.unit = unit;
  slot.description = description;
  slot.values =
      std::make_unique<std::atomic<std::int64_t>[]>(
          static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    slot.values[static_cast<std::size_t>(r)].store(
        0, std::memory_order_relaxed);
  }
  if (cls == PvarClass::kHistogram) {
    const std::size_t cells = static_cast<std::size_t>(ranks_) * kHistStride;
    slot.hist = std::make_unique<std::atomic<std::int64_t>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i)
      slot.hist[i].store(0, std::memory_order_relaxed);
  }
  // Publish: readers load count_ with acquire before touching slots_[n].
  count_.store(n + 1, std::memory_order_release);
  return PvarId{n};
}

PvarId PvarRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(register_mu_);
  const std::uint32_t n = count_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (slots_[i].name == name) return PvarId{i};
  }
  return PvarId{};
}

void PvarRegistry::add(PvarId id, int rank, std::int64_t delta) {
  if (!id.valid()) return;
  slots_[id.index].values[static_cast<std::size_t>(rank)].fetch_add(
      delta, std::memory_order_relaxed);
}

void PvarRegistry::raise(PvarId id, int rank, std::int64_t value) {
  if (!id.valid()) return;
  auto& cell = slots_[id.index].values[static_cast<std::size_t>(rank)];
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (value > cur &&
         !cell.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

void PvarRegistry::record(PvarId id, int rank, std::int64_t value) {
  if (!id.valid()) return;
  Slot& slot = slots_[id.index];
  if (slot.hist == nullptr) return;
  const std::size_t base = static_cast<std::size_t>(rank) * kHistStride;
  slot.values[static_cast<std::size_t>(rank)].fetch_add(
      1, std::memory_order_relaxed);
  slot.hist[base + hist_bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  slot.hist[base + kHistBuckets].fetch_add(value, std::memory_order_relaxed);
  auto& max_cell = slot.hist[base + kHistBuckets + 1];
  std::int64_t cur = max_cell.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_cell.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
  }
}

std::int64_t PvarRegistry::read(PvarId id, int rank) const {
  if (!id.valid()) return 0;
  return slots_[id.index].values[static_cast<std::size_t>(rank)].load(
      std::memory_order_relaxed);
}

std::int64_t PvarRegistry::total(PvarId id) const {
  if (!id.valid()) return 0;
  std::int64_t sum = 0;
  for (int r = 0; r < ranks_; ++r) sum += read(id, r);
  return sum;
}

HistReading PvarRegistry::read_hist(PvarId id, int rank) const {
  HistReading out;
  if (!id.valid()) return out;
  const Slot& slot = slots_[id.index];
  if (slot.hist == nullptr) return out;
  const std::size_t base = static_cast<std::size_t>(rank) * kHistStride;
  out.count = read(id, rank);
  out.sum = slot.hist[base + kHistBuckets].load(std::memory_order_relaxed);
  out.max = slot.hist[base + kHistBuckets + 1].load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistBuckets; ++i)
    out.buckets[i] = slot.hist[base + i].load(std::memory_order_relaxed);
  return out;
}

HistReading PvarRegistry::hist_total(PvarId id) const {
  HistReading out;
  if (!id.valid()) return out;
  for (int r = 0; r < ranks_; ++r) out.merge(read_hist(id, r));
  return out;
}

std::vector<PvarRegistry::Reading> PvarRegistry::snapshot() const {
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  std::vector<Reading> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Slot& slot = slots_[i];
    Reading r;
    r.name = slot.name;
    r.cls = slot.cls;
    r.unit = slot.unit;
    r.description = slot.description;
    r.values.resize(static_cast<std::size_t>(ranks_));
    for (int rank = 0; rank < ranks_; ++rank) {
      const std::int64_t v = read(PvarId{i}, rank);
      r.values[static_cast<std::size_t>(rank)] = v;
      r.total += v;
    }
    out.push_back(std::move(r));
  }
  return out;
}

void PvarRegistry::reset_values() {
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int r = 0; r < ranks_; ++r) {
      slots_[i].values[static_cast<std::size_t>(r)].store(
          0, std::memory_order_relaxed);
    }
    if (slots_[i].hist != nullptr) {
      const std::size_t cells =
          static_cast<std::size_t>(ranks_) * kHistStride;
      for (std::size_t c = 0; c < cells; ++c)
        slots_[i].hist[c].store(0, std::memory_order_relaxed);
    }
  }
}

Table PvarRegistry::to_table() const {
  std::vector<std::string> headers{"pvar", "class"};
  for (int r = 0; r < ranks_; ++r)
    headers.push_back("rank" + std::to_string(r));
  headers.push_back("total");
  Table table(std::move(headers));

  for (const Reading& reading : snapshot()) {
    std::vector<std::string> row{reading.name,
                                 pvar_class_name(reading.cls)};
    auto fmt = [&](std::int64_t v) {
      // Timers accumulate virtual ns; report them in microseconds.
      return reading.cls == PvarClass::kTimer
                 ? fmt_double(static_cast<double>(v) / 1e3, 2)
                 : std::to_string(v);
    };
    for (const std::int64_t v : reading.values) row.push_back(fmt(v));
    // A high-water mark sums poorly; show the max across ranks instead.
    if (reading.cls == PvarClass::kLevel) {
      std::int64_t max = 0;
      for (const std::int64_t v : reading.values)
        if (v > max) max = v;
      row.push_back("max " + std::to_string(max));
    } else {
      row.push_back(fmt(reading.total));
    }
    table.add_row(std::move(row));
  }
  return table;
}

bool PvarRegistry::has_histograms() const {
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (slots_[i].cls == PvarClass::kHistogram) return true;
  }
  return false;
}

Table PvarRegistry::hist_table() const {
  Table table({"histogram", "unit", "count", "p50", "p90", "p99", "max"});
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Slot& slot = slots_[i];
    if (slot.cls != PvarClass::kHistogram) continue;
    const HistReading h = hist_total(PvarId{i});
    const bool ns = slot.unit == PvarUnit::kNanoseconds;
    auto fmt = [&](std::int64_t v) {
      // Nanosecond distributions render in microseconds, like timers.
      return ns ? fmt_double(static_cast<double>(v) / 1e3, 2)
                : std::to_string(v);
    };
    table.add_row({slot.name, ns ? "us" : pvar_unit_name(slot.unit),
                   std::to_string(h.count), fmt(h.percentile(50)),
                   fmt(h.percentile(90)), fmt(h.percentile(99)),
                   fmt(h.max)});
  }
  return table;
}

}  // namespace jhpc::obs
