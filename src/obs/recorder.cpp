#include "jhpc/obs/recorder.hpp"

#include <cstdio>

#include "jhpc/support/error.hpp"

namespace jhpc::obs {

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kPost: return "post";
    case FlightKind::kMatch: return "match";
    case FlightKind::kEagerSend: return "eager_send";
    case FlightKind::kRndvSend: return "rndv_send";
    case FlightKind::kAck: return "ack";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kTimeout: return "timeout";
    case FlightKind::kKill: return "kill";
    case FlightKind::kRevoke: return "revoke";
    case FlightKind::kRmaPut: return "rma_put";
    case FlightKind::kRmaGet: return "rma_get";
    case FlightKind::kRmaAcc: return "rma_acc";
    case FlightKind::kRmaSync: return "rma_sync";
    case FlightKind::kJobAdmit: return "job_admit";
    case FlightKind::kJobReject: return "job_reject";
    case FlightKind::kJobQuotaTrip: return "job_quota_trip";
    case FlightKind::kJobDrain: return "job_drain";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity, int ranks)
    : capacity_(capacity) {
  if (capacity == 0) return;
  JHPC_REQUIRE(ranks >= 1, "FlightRecorder needs at least one rank");
  rings_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto ring = std::make_unique<Ring>();
    ring->buf.resize(capacity);
    rings_.push_back(std::move(ring));
  }
}

void FlightRecorder::record(int rank, FlightEvent ev) {
  if (rings_.empty()) return;
  Ring& ring = *rings_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lk(ring.mu);
  if (ring.size == ring.buf.size()) {
    ring.buf[ring.head] = ev;
    ring.head = (ring.head + 1) % ring.buf.size();
    return;
  }
  ring.buf[(ring.head + ring.size) % ring.buf.size()] = ev;
  ++ring.size;
}

std::vector<FlightEvent> FlightRecorder::events(int rank) const {
  std::vector<FlightEvent> out;
  if (rings_.empty()) return out;
  const Ring& ring = *rings_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lk(ring.mu);
  out.reserve(ring.size);
  for (std::size_t i = 0; i < ring.size; ++i)
    out.push_back(ring.buf[(ring.head + i) % ring.buf.size()]);
  return out;
}

bool FlightRecorder::empty() const {
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lk(ring->mu);
    if (ring->size != 0) return false;
  }
  return true;
}

void FlightRecorder::clear() {
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lk(ring->mu);
    ring->head = 0;
    ring->size = 0;
  }
}

std::string FlightRecorder::report() const {
  std::vector<std::vector<FlightEvent>> per_rank;
  per_rank.reserve(rings_.size());
  std::vector<int> involved;
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    per_rank.push_back(events(static_cast<int>(r)));
    if (!per_rank.back().empty()) involved.push_back(static_cast<int>(r));
  }
  if (involved.empty()) return {};

  std::string out =
      "[jhpc-obs] flight recorder: last protocol events per rank\n";
  out += "involved ranks:";
  for (const int r : involved) out += " " + std::to_string(r);
  out += "\n";
  for (const int r : involved) {
    out += "rank " + std::to_string(r) + ":\n";
    for (const FlightEvent& ev : per_rank[static_cast<std::size_t>(r)]) {
      char line[160];
      switch (ev.kind) {
        case FlightKind::kPost:
        case FlightKind::kMatch:
        case FlightKind::kEagerSend:
        case FlightKind::kRndvSend:
        case FlightKind::kRmaPut:
        case FlightKind::kRmaGet:
        case FlightKind::kRmaAcc:
        case FlightKind::kRmaSync:
          std::snprintf(line, sizeof(line),
                        "  @%12lldns  %-10s peer=%d tag=%d bytes=%lld\n",
                        static_cast<long long>(ev.vtime_ns),
                        flight_kind_name(ev.kind), ev.peer, ev.tag,
                        static_cast<long long>(ev.arg));
          break;
        case FlightKind::kAck:
        case FlightKind::kRetransmit:
        case FlightKind::kTimeout:
          std::snprintf(line, sizeof(line),
                        "  @%12lldns  %-10s peer=%d seq=%lld\n",
                        static_cast<long long>(ev.vtime_ns),
                        flight_kind_name(ev.kind), ev.peer,
                        static_cast<long long>(ev.arg));
          break;
        case FlightKind::kKill:
          std::snprintf(line, sizeof(line), "  @%12lldns  kill\n",
                        static_cast<long long>(ev.vtime_ns));
          break;
        case FlightKind::kRevoke:
          std::snprintf(line, sizeof(line),
                        "  @%12lldns  revoke     context=%lld\n",
                        static_cast<long long>(ev.vtime_ns),
                        static_cast<long long>(ev.arg));
          break;
        case FlightKind::kJobAdmit:
        case FlightKind::kJobReject:
        case FlightKind::kJobQuotaTrip:
        case FlightKind::kJobDrain:
          std::snprintf(line, sizeof(line),
                        "  @%12lldns  %-14s job=%lld prio=%d class=%d\n",
                        static_cast<long long>(ev.vtime_ns),
                        flight_kind_name(ev.kind),
                        static_cast<long long>(ev.arg), ev.peer, ev.tag);
          break;
      }
      out += line;
    }
  }
  return out;
}

}  // namespace jhpc::obs
