#include "jhpc/obs/waitstate.hpp"

namespace jhpc::obs {

WaitState::WaitState(PvarRegistry& reg)
    : reg_(reg),
      late_sender_(reg.register_pvar(
          "waitstate.late_sender", PvarClass::kCounter,
          "receives that idled waiting for the sender's data")),
      late_sender_ns_(reg.register_pvar(
          "waitstate.late_sender_ns", PvarClass::kTimer,
          "virtual ns receives idled waiting for late senders")),
      late_receiver_(reg.register_pvar(
          "waitstate.late_receiver", PvarClass::kCounter,
          "messages that sat unexpected waiting for the receive post")),
      late_receiver_ns_(reg.register_pvar(
          "waitstate.late_receiver_ns", PvarClass::kTimer,
          "virtual ns messages sat waiting for late receivers")),
      barrier_(reg.register_pvar(
          "waitstate.wait_at_barrier", PvarClass::kCounter,
          "collective entries that waited on a later-arriving rank")),
      barrier_ns_(reg.register_pvar(
          "waitstate.wait_at_barrier_ns", PvarClass::kTimer,
          "virtual ns of collective-entry skew vs the last rank")) {}

void WaitState::late_sender(int recv_world, std::int64_t wait_ns) {
  reg_.add(late_sender_, recv_world, 1);
  reg_.add(late_sender_ns_, recv_world, wait_ns);
}

void WaitState::late_receiver(int recv_world, std::int64_t wait_ns) {
  reg_.add(late_receiver_, recv_world, 1);
  reg_.add(late_receiver_ns_, recv_world, wait_ns);
}

void WaitState::coll_entry(int context_id,
                           const std::vector<int>& group_world,
                           int my_index, std::int64_t entry_vns) {
  if (group_world.size() < 2) return;
  // Charges computed under the lock, applied to lock-free pvar cells, so
  // the critical section is a couple of map operations per entry.
  std::lock_guard<std::mutex> lk(mu_);
  const int me = group_world[static_cast<std::size_t>(my_index)];
  const std::uint64_t s = seq_[{context_id, me}]++;
  auto it = pending_.try_emplace({context_id, s}).first;
  Pending& p = it->second;
  if (p.entry.empty()) {
    p.entry.assign(group_world.size(), -1);
    p.remaining = group_world.size();
  }
  p.entry[static_cast<std::size_t>(my_index)] = entry_vns;
  if (--p.remaining > 0) return;

  std::int64_t last = entry_vns;
  for (const std::int64_t t : p.entry)
    if (t > last) last = t;
  for (std::size_t i = 0; i < p.entry.size(); ++i) {
    const std::int64_t skew = last - p.entry[i];
    if (skew <= 0) continue;
    reg_.add(barrier_, group_world[i], 1);
    reg_.add(barrier_ns_, group_world[i], skew);
  }
  pending_.erase(it);
}

void WaitState::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  seq_.clear();
  pending_.clear();
}

}  // namespace jhpc::obs
