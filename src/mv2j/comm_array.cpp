// Java-array paths of the MVAPICH2-J bindings: the paper's Figure 3
// pipeline, built on the mpjbuf buffering layer.
//
//   1. acquire a pooled direct staging buffer,
//   2. bulk-copy the Java array onto it (mpjbuf write),
//   3. one JNI crossing with the staging buffer reference,
//   4. native MPI call on the staging buffer's stable pointer,
//   (receive side mirrors with mpjbuf read).
//
// Because the staging buffer can outlive the call inside a Request, the
// same pipeline supports non-blocking operations — the capability the
// Open MPI Java bindings lack for arrays.
#include <memory>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/mv2j/comm.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mv2j {

namespace {

/// Validate an (offset, count, type) triple against a backing array.
/// Works for basic and derived datatypes: the span check uses the type's
/// extent (slightly conservative for trailing strided gaps).
template <minijvm::JavaPrimitive T>
void check_args(const JArray<T>& buf, std::size_t offset, int count,
                const Datatype& type, const char* what) {
  JHPC_REQUIRE(count >= 0, std::string(what) + ": negative count");
  JHPC_REQUIRE(kind_of<T>() == type.leafKind(),
               std::string(what) + ": datatype does not match array type");
  const std::size_t span_bytes =
      offset * sizeof(T) + static_cast<std::size_t>(count) * type.extent();
  JHPC_REQUIRE(span_bytes <= buf.length() * sizeof(T),
               std::string(what) + ": offset+count exceeds array length");
}

template <minijvm::JavaPrimitive T>
void check_args(const JArray<T>& buf, int count, const Datatype& type,
                const char* what) {
  check_args(buf, 0, count, type, what);
}

/// Payload bytes carried by `count` elements of `type`.
std::size_t payload_of(int count, const Datatype& type) {
  return static_cast<std::size_t>(count) * type.size();
}

/// Copy `count` elements of `type` starting at element `offset` of `buf`
/// onto the staging buffer (Figure 3 step 2). Basic types take the bulk
/// path; derived types are packed element by element (the gather the
/// buffering layer exists for).
template <minijvm::JavaPrimitive T>
void stage_in(mpjbuf::Buffer& stage, const JArray<T>& buf,
              std::size_t offset, int count, const Datatype& type) {
  if (type.isBasic()) {
    stage.write(buf, offset, static_cast<std::size_t>(count));
  } else {
    type.native().pack(buf.raw_address() + offset * sizeof(T),
                       stage.reserve(payload_of(count, type)), count);
  }
  stage.commit();
}

/// Inverse of stage_in: scatter `bytes` of staged payload back into the
/// array at element `offset`.
template <minijvm::JavaPrimitive T>
void stage_out(mpjbuf::Buffer& stage, JArray<T>& buf, std::size_t offset,
               const Datatype& type, std::size_t bytes) {
  stage.notify_native_write(bytes);
  if (type.isBasic()) {
    stage.read(buf, offset, bytes / sizeof(T));
  } else {
    const auto count = static_cast<int>(bytes / type.size());
    type.native().unpack(stage.consume(bytes),
                         buf.raw_address() + offset * sizeof(T), count);
  }
}

}  // namespace

// --- Point-to-point ----------------------------------------------------------

template <JavaPrimitive T>
void Comm::send(const JArray<T>& buf, int offset, int count,
                const Datatype& type, int dest, int tag) const {
  JHPC_REQUIRE(valid(), "send on invalid communicator");
  JHPC_REQUIRE(offset >= 0, "send: negative offset");
  check_args(buf, static_cast<std::size_t>(offset), count, type, "send");
  const std::size_t bytes = payload_of(count, type);
  mpjbuf::Buffer stage = env_->pool_->get(bytes);            // step 1
  stage_in(stage, buf, static_cast<std::size_t>(offset), count, type);
  env_->jvm_->jni().crossing();                              // step 3
  native_.send(stage.native_address(), bytes, dest, tag);    // step 4
}

template <JavaPrimitive T>
void Comm::send(const JArray<T>& buf, int count, const Datatype& type,
                int dest, int tag) const {
  send(buf, 0, count, type, dest, tag);
}

template <JavaPrimitive T>
Status Comm::recv(JArray<T>& buf, int offset, int count,
                  const Datatype& type, int source, int tag) const {
  JHPC_REQUIRE(valid(), "recv on invalid communicator");
  JHPC_REQUIRE(offset >= 0, "recv: negative offset");
  check_args(buf, static_cast<std::size_t>(offset), count, type, "recv");
  const std::size_t bytes = payload_of(count, type);
  mpjbuf::Buffer stage = env_->pool_->get(bytes);
  env_->jvm_->jni().crossing();
  minimpi::Status st;
  native_.recv(stage.native_address(), bytes, source, tag, &st);
  stage_out(stage, buf, static_cast<std::size_t>(offset), type,
            st.count_bytes);
  return Status(st);
}

template <JavaPrimitive T>
Status Comm::recv(JArray<T>& buf, int count, const Datatype& type,
                  int source, int tag) const {
  return recv(buf, 0, count, type, source, tag);
}

template <JavaPrimitive T>
Request Comm::iSend(const JArray<T>& buf, int offset, int count,
                    const Datatype& type, int dest, int tag) const {
  JHPC_REQUIRE(valid(), "iSend on invalid communicator");
  JHPC_REQUIRE(offset >= 0, "iSend: negative offset");
  check_args(buf, static_cast<std::size_t>(offset), count, type, "iSend");
  const std::size_t bytes = payload_of(count, type);
  auto stage = std::make_shared<mpjbuf::Buffer>(env_->pool_->get(bytes));
  stage_in(*stage, buf, static_cast<std::size_t>(offset), count, type);
  env_->jvm_->jni().crossing();
  minimpi::Request r =
      native_.isend(stage->native_address(), bytes, dest, tag);
  auto completion = std::make_shared<Request::CompletionState>();
  // Nothing to copy back; the completion merely keeps the staging buffer
  // alive until the native send no longer needs it.
  completion->on_complete = [stage](const minimpi::Status&) {};
  return Request(std::move(r), std::move(completion));
}

template <JavaPrimitive T>
Request Comm::iSend(const JArray<T>& buf, int count, const Datatype& type,
                    int dest, int tag) const {
  return iSend(buf, 0, count, type, dest, tag);
}

template <JavaPrimitive T>
Request Comm::iRecv(JArray<T>& buf, int offset, int count,
                    const Datatype& type, int source, int tag) const {
  JHPC_REQUIRE(valid(), "iRecv on invalid communicator");
  JHPC_REQUIRE(offset >= 0, "iRecv: negative offset");
  check_args(buf, static_cast<std::size_t>(offset), count, type, "iRecv");
  const std::size_t bytes = payload_of(count, type);
  auto stage = std::make_shared<mpjbuf::Buffer>(env_->pool_->get(bytes));
  env_->jvm_->jni().crossing();
  minimpi::Request r =
      native_.irecv(stage->native_address(), bytes, source, tag);
  auto completion = std::make_shared<Request::CompletionState>();
  JArray<T> target = buf;  // shared handle: keeps the array alive
  const auto off = static_cast<std::size_t>(offset);
  const Datatype dt = type;
  completion->on_complete = [stage, target, off,
                             dt](const minimpi::Status& st) mutable {
    stage_out(*stage, target, off, dt, st.count_bytes);
  };
  return Request(std::move(r), std::move(completion));
}

template <JavaPrimitive T>
Request Comm::iRecv(JArray<T>& buf, int count, const Datatype& type,
                    int source, int tag) const {
  return iRecv(buf, 0, count, type, source, tag);
}

// --- Blocking collectives -------------------------------------------------------

template <JavaPrimitive T>
void Comm::bcast(JArray<T>& buf, int count, const Datatype& type,
                 int root) const {
  JHPC_REQUIRE(valid(), "bcast on invalid communicator");
  check_args(buf, count, type, "bcast");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  mpjbuf::Buffer stage = env_->pool_->get(bytes);
  if (getRank() == root) {
    stage.write(buf, 0, static_cast<std::size_t>(count));
    stage.commit();
  }
  env_->jvm_->jni().crossing();
  native_.bcast(stage.native_address(), bytes, root);
  if (getRank() != root) {
    stage.notify_native_write(bytes);
    stage.read(buf, 0, static_cast<std::size_t>(count));
  }
}

template <JavaPrimitive T>
void Comm::reduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                  const Datatype& type, const Op& op, int root) const {
  JHPC_REQUIRE(valid(), "reduce on invalid communicator");
  check_args(sendbuf, count, type, "reduce");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  mpjbuf::Buffer sstage = env_->pool_->get(bytes);
  mpjbuf::Buffer rstage = env_->pool_->get(bytes);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(count));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.reduce(sstage.native_address(), rstage.native_address(),
                 static_cast<std::size_t>(count), type.kind(), op.native(),
                 root);
  if (getRank() == root) {
    check_args(recvbuf, count, type, "reduce(recv)");
    rstage.notify_native_write(bytes);
    rstage.read(recvbuf, 0, static_cast<std::size_t>(count));
  }
}

template <JavaPrimitive T>
void Comm::allReduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                     const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "allReduce on invalid communicator");
  check_args(sendbuf, count, type, "allReduce");
  check_args(recvbuf, count, type, "allReduce(recv)");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  mpjbuf::Buffer sstage = env_->pool_->get(bytes);
  mpjbuf::Buffer rstage = env_->pool_->get(bytes);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(count));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.allreduce(sstage.native_address(), rstage.native_address(),
                    static_cast<std::size_t>(count), type.kind(),
                    op.native());
  rstage.notify_native_write(bytes);
  rstage.read(recvbuf, 0, static_cast<std::size_t>(count));
}

template <JavaPrimitive T>
void Comm::reduceScatterBlock(const JArray<T>& sendbuf, JArray<T>& recvbuf,
                              int recvcount, const Datatype& type,
                              const Op& op) const {
  JHPC_REQUIRE(valid(), "reduceScatterBlock on invalid communicator");
  check_args(recvbuf, recvcount, type, "reduceScatterBlock(recv)");
  const std::size_t block = payload_of(recvcount, type);
  const std::size_t total = block * static_cast<std::size_t>(getSize());
  JHPC_REQUIRE(sendbuf.length() * sizeof(T) >= total,
               "reduceScatterBlock: send array too small");
  mpjbuf::Buffer sstage = env_->pool_->get(total);
  mpjbuf::Buffer rstage = env_->pool_->get(block);
  sstage.write(sendbuf, 0, total / sizeof(T));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.reduce_scatter_block(sstage.native_address(),
                               rstage.native_address(),
                               static_cast<std::size_t>(recvcount),
                               type.kind(), op.native());
  rstage.notify_native_write(block);
  rstage.read(recvbuf, 0, static_cast<std::size_t>(recvcount));
}

template <JavaPrimitive T>
void Comm::scan(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "scan on invalid communicator");
  check_args(sendbuf, count, type, "scan");
  check_args(recvbuf, count, type, "scan(recv)");
  const std::size_t bytes = payload_of(count, type);
  mpjbuf::Buffer sstage = env_->pool_->get(bytes);
  mpjbuf::Buffer rstage = env_->pool_->get(bytes);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(count));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.scan(sstage.native_address(), rstage.native_address(),
               static_cast<std::size_t>(count), type.kind(), op.native());
  rstage.notify_native_write(bytes);
  rstage.read(recvbuf, 0, static_cast<std::size_t>(count));
}

template <JavaPrimitive T>
void Comm::gather(const JArray<T>& sendbuf, int count, const Datatype& type,
                  JArray<T>& recvbuf, int root) const {
  JHPC_REQUIRE(valid(), "gather on invalid communicator");
  check_args(sendbuf, count, type, "gather");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  const std::size_t total = bytes * static_cast<std::size_t>(getSize());
  mpjbuf::Buffer sstage = env_->pool_->get(bytes);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(count));
  sstage.commit();
  mpjbuf::Buffer rstage =
      getRank() == root ? env_->pool_->get(total) : mpjbuf::Buffer{};
  env_->jvm_->jni().crossing();
  native_.gather(sstage.native_address(), bytes,
                 getRank() == root ? rstage.native_address() : nullptr,
                 root);
  if (getRank() == root) {
    JHPC_REQUIRE(recvbuf.length() >= total / sizeof(T),
                 "gather: receive array too small");
    rstage.notify_native_write(total);
    rstage.read(recvbuf, 0, total / sizeof(T));
  }
}

template <JavaPrimitive T>
void Comm::scatter(const JArray<T>& sendbuf, int count, const Datatype& type,
                   JArray<T>& recvbuf, int root) const {
  JHPC_REQUIRE(valid(), "scatter on invalid communicator");
  check_args(recvbuf, count, type, "scatter(recv)");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  const std::size_t total = bytes * static_cast<std::size_t>(getSize());
  mpjbuf::Buffer sstage =
      getRank() == root ? env_->pool_->get(total) : mpjbuf::Buffer{};
  if (getRank() == root) {
    JHPC_REQUIRE(sendbuf.length() >= total / sizeof(T),
                 "scatter: send array too small");
    sstage.write(sendbuf, 0, total / sizeof(T));
    sstage.commit();
  }
  mpjbuf::Buffer rstage = env_->pool_->get(bytes);
  env_->jvm_->jni().crossing();
  native_.scatter(getRank() == root ? sstage.native_address() : nullptr,
                  bytes, rstage.native_address(), root);
  rstage.notify_native_write(bytes);
  rstage.read(recvbuf, 0, static_cast<std::size_t>(count));
}

template <JavaPrimitive T>
void Comm::allGather(const JArray<T>& sendbuf, int count,
                     const Datatype& type, JArray<T>& recvbuf) const {
  JHPC_REQUIRE(valid(), "allGather on invalid communicator");
  check_args(sendbuf, count, type, "allGather");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  const std::size_t total = bytes * static_cast<std::size_t>(getSize());
  JHPC_REQUIRE(recvbuf.length() >= total / sizeof(T),
               "allGather: receive array too small");
  mpjbuf::Buffer sstage = env_->pool_->get(bytes);
  mpjbuf::Buffer rstage = env_->pool_->get(total);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(count));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.allgather(sstage.native_address(), bytes, rstage.native_address());
  rstage.notify_native_write(total);
  rstage.read(recvbuf, 0, total / sizeof(T));
}

template <JavaPrimitive T>
void Comm::allToAll(const JArray<T>& sendbuf, int count,
                    const Datatype& type, JArray<T>& recvbuf) const {
  JHPC_REQUIRE(valid(), "allToAll on invalid communicator");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  const std::size_t total = bytes * static_cast<std::size_t>(getSize());
  JHPC_REQUIRE(sendbuf.length() >= total / sizeof(T),
               "allToAll: send array too small");
  JHPC_REQUIRE(recvbuf.length() >= total / sizeof(T),
               "allToAll: receive array too small");
  JHPC_REQUIRE(kind_of<T>() == type.kind(),
               "allToAll: datatype does not match array type");
  mpjbuf::Buffer sstage = env_->pool_->get(total);
  mpjbuf::Buffer rstage = env_->pool_->get(total);
  sstage.write(sendbuf, 0, total / sizeof(T));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.alltoall(sstage.native_address(), bytes, rstage.native_address());
  rstage.notify_native_write(total);
  rstage.read(recvbuf, 0, total / sizeof(T));
}

// --- Vectored collectives ----------------------------------------------------------

template <JavaPrimitive T>
void Comm::gatherv(const JArray<T>& sendbuf, int sendcount,
                   const Datatype& type, JArray<T>& recvbuf,
                   std::span<const int> recvcounts,
                   std::span<const int> displs, int root) const {
  JHPC_REQUIRE(valid(), "gatherv on invalid communicator");
  check_args(sendbuf, sendcount, type, "gatherv");
  const std::size_t sbytes =
      static_cast<std::size_t>(sendcount) * sizeof(T);
  std::vector<std::size_t> counts, offs;
  counts.reserve(recvcounts.size());
  offs.reserve(displs.size());
  std::size_t span_end = 0;
  for (std::size_t i = 0; i < recvcounts.size(); ++i) {
    counts.push_back(static_cast<std::size_t>(recvcounts[i]) * sizeof(T));
    offs.push_back(static_cast<std::size_t>(displs[i]) * sizeof(T));
    span_end = std::max(span_end, offs.back() + counts.back());
  }
  mpjbuf::Buffer sstage = env_->pool_->get(sbytes);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(sendcount));
  sstage.commit();
  mpjbuf::Buffer rstage =
      getRank() == root ? env_->pool_->get(span_end) : mpjbuf::Buffer{};
  env_->jvm_->jni().crossing();
  native_.gatherv(sstage.native_address(), sbytes,
                  getRank() == root ? rstage.native_address() : nullptr,
                  counts, offs, root);
  if (getRank() == root) {
    JHPC_REQUIRE(recvbuf.length() * sizeof(T) >= span_end,
                 "gatherv: receive array too small");
    rstage.notify_native_write(span_end);
    rstage.read(recvbuf, 0, span_end / sizeof(T));
  }
}

template <JavaPrimitive T>
void Comm::scatterv(const JArray<T>& sendbuf,
                    std::span<const int> sendcounts,
                    std::span<const int> displs, const Datatype& type,
                    JArray<T>& recvbuf, int recvcount, int root) const {
  JHPC_REQUIRE(valid(), "scatterv on invalid communicator");
  check_args(recvbuf, recvcount, type, "scatterv(recv)");
  const std::size_t rbytes =
      static_cast<std::size_t>(recvcount) * sizeof(T);
  std::vector<std::size_t> counts, offs;
  std::size_t span_end = 0;
  for (std::size_t i = 0; i < sendcounts.size(); ++i) {
    counts.push_back(static_cast<std::size_t>(sendcounts[i]) * sizeof(T));
    offs.push_back(static_cast<std::size_t>(displs[i]) * sizeof(T));
    span_end = std::max(span_end, offs.back() + counts.back());
  }
  mpjbuf::Buffer sstage =
      getRank() == root ? env_->pool_->get(span_end) : mpjbuf::Buffer{};
  if (getRank() == root) {
    JHPC_REQUIRE(sendbuf.length() * sizeof(T) >= span_end,
                 "scatterv: send array too small");
    sstage.write(sendbuf, 0, span_end / sizeof(T));
    sstage.commit();
  }
  mpjbuf::Buffer rstage = env_->pool_->get(rbytes);
  env_->jvm_->jni().crossing();
  native_.scatterv(getRank() == root ? sstage.native_address() : nullptr,
                   counts, offs, rstage.native_address(), rbytes, root);
  rstage.notify_native_write(rbytes);
  rstage.read(recvbuf, 0, static_cast<std::size_t>(recvcount));
}

template <JavaPrimitive T>
void Comm::allGatherv(const JArray<T>& sendbuf, int sendcount,
                      const Datatype& type, JArray<T>& recvbuf,
                      std::span<const int> recvcounts,
                      std::span<const int> displs) const {
  JHPC_REQUIRE(valid(), "allGatherv on invalid communicator");
  check_args(sendbuf, sendcount, type, "allGatherv");
  const std::size_t sbytes =
      static_cast<std::size_t>(sendcount) * sizeof(T);
  std::vector<std::size_t> counts, offs;
  std::size_t span_end = 0;
  for (std::size_t i = 0; i < recvcounts.size(); ++i) {
    counts.push_back(static_cast<std::size_t>(recvcounts[i]) * sizeof(T));
    offs.push_back(static_cast<std::size_t>(displs[i]) * sizeof(T));
    span_end = std::max(span_end, offs.back() + counts.back());
  }
  JHPC_REQUIRE(recvbuf.length() * sizeof(T) >= span_end,
               "allGatherv: receive array too small");
  mpjbuf::Buffer sstage = env_->pool_->get(sbytes);
  mpjbuf::Buffer rstage = env_->pool_->get(span_end);
  sstage.write(sendbuf, 0, static_cast<std::size_t>(sendcount));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.allgatherv(sstage.native_address(), sbytes,
                     rstage.native_address(), counts, offs);
  rstage.notify_native_write(span_end);
  rstage.read(recvbuf, 0, span_end / sizeof(T));
}

template <JavaPrimitive T>
void Comm::allToAllv(const JArray<T>& sendbuf,
                     std::span<const int> sendcounts,
                     std::span<const int> sdispls, const Datatype& type,
                     JArray<T>& recvbuf, std::span<const int> recvcounts,
                     std::span<const int> rdispls) const {
  JHPC_REQUIRE(valid(), "allToAllv on invalid communicator");
  JHPC_REQUIRE(kind_of<T>() == type.kind(),
               "allToAllv: datatype does not match array type");
  std::vector<std::size_t> sc, so, rc, ro;
  std::size_t s_end = 0, r_end = 0;
  for (std::size_t i = 0; i < sendcounts.size(); ++i) {
    sc.push_back(static_cast<std::size_t>(sendcounts[i]) * sizeof(T));
    so.push_back(static_cast<std::size_t>(sdispls[i]) * sizeof(T));
    s_end = std::max(s_end, so.back() + sc.back());
  }
  for (std::size_t i = 0; i < recvcounts.size(); ++i) {
    rc.push_back(static_cast<std::size_t>(recvcounts[i]) * sizeof(T));
    ro.push_back(static_cast<std::size_t>(rdispls[i]) * sizeof(T));
    r_end = std::max(r_end, ro.back() + rc.back());
  }
  JHPC_REQUIRE(sendbuf.length() * sizeof(T) >= s_end,
               "allToAllv: send array too small");
  JHPC_REQUIRE(recvbuf.length() * sizeof(T) >= r_end,
               "allToAllv: receive array too small");
  mpjbuf::Buffer sstage = env_->pool_->get(s_end == 0 ? 1 : s_end);
  mpjbuf::Buffer rstage = env_->pool_->get(r_end == 0 ? 1 : r_end);
  sstage.write(sendbuf, 0, s_end / sizeof(T));
  sstage.commit();
  env_->jvm_->jni().crossing();
  native_.alltoallv(sstage.native_address(), sc, so,
                    rstage.native_address(), rc, ro);
  rstage.notify_native_write(r_end);
  rstage.read(recvbuf, 0, r_end / sizeof(T));
}

// --- Explicit instantiations for the eight Java primitive types --------------

#define JHPC_MV2J_INSTANTIATE(T)                                             \
  template void Comm::send<T>(const JArray<T>&, int, const Datatype&, int,   \
                              int) const;                                    \
  template Status Comm::recv<T>(JArray<T>&, int, const Datatype&, int, int)  \
      const;                                                                 \
  template Request Comm::iSend<T>(const JArray<T>&, int, const Datatype&,    \
                                  int, int) const;                           \
  template Request Comm::iRecv<T>(JArray<T>&, int, const Datatype&, int,     \
                                  int) const;                                \
  template void Comm::send<T>(const JArray<T>&, int, int, const Datatype&,   \
                              int, int) const;                               \
  template Status Comm::recv<T>(JArray<T>&, int, int, const Datatype&, int,  \
                                int) const;                                  \
  template Request Comm::iSend<T>(const JArray<T>&, int, int,                \
                                  const Datatype&, int, int) const;          \
  template Request Comm::iRecv<T>(JArray<T>&, int, int, const Datatype&,     \
                                  int, int) const;                           \
  template void Comm::bcast<T>(JArray<T>&, int, const Datatype&, int) const; \
  template void Comm::reduce<T>(const JArray<T>&, JArray<T>&, int,           \
                                const Datatype&, const Op&, int) const;      \
  template void Comm::allReduce<T>(const JArray<T>&, JArray<T>&, int,        \
                                   const Datatype&, const Op&) const;        \
  template void Comm::reduceScatterBlock<T>(const JArray<T>&, JArray<T>&,    \
                                            int, const Datatype&,            \
                                            const Op&) const;                \
  template void Comm::scan<T>(const JArray<T>&, JArray<T>&, int,             \
                              const Datatype&, const Op&) const;             \
  template void Comm::gather<T>(const JArray<T>&, int, const Datatype&,      \
                                JArray<T>&, int) const;                      \
  template void Comm::scatter<T>(const JArray<T>&, int, const Datatype&,     \
                                 JArray<T>&, int) const;                     \
  template void Comm::allGather<T>(const JArray<T>&, int, const Datatype&,   \
                                   JArray<T>&) const;                        \
  template void Comm::allToAll<T>(const JArray<T>&, int, const Datatype&,    \
                                  JArray<T>&) const;                         \
  template void Comm::gatherv<T>(const JArray<T>&, int, const Datatype&,     \
                                 JArray<T>&, std::span<const int>,           \
                                 std::span<const int>, int) const;           \
  template void Comm::scatterv<T>(const JArray<T>&, std::span<const int>,    \
                                  std::span<const int>, const Datatype&,     \
                                  JArray<T>&, int, int) const;               \
  template void Comm::allGatherv<T>(const JArray<T>&, int, const Datatype&,  \
                                    JArray<T>&, std::span<const int>,        \
                                    std::span<const int>) const;             \
  template void Comm::allToAllv<T>(const JArray<T>&, std::span<const int>,   \
                                   std::span<const int>, const Datatype&,    \
                                   JArray<T>&, std::span<const int>,         \
                                   std::span<const int>) const;

JHPC_MV2J_INSTANTIATE(minijvm::jbyte)
JHPC_MV2J_INSTANTIATE(minijvm::jboolean)
JHPC_MV2J_INSTANTIATE(minijvm::jchar)
JHPC_MV2J_INSTANTIATE(minijvm::jshort)
JHPC_MV2J_INSTANTIATE(minijvm::jint)
JHPC_MV2J_INSTANTIATE(minijvm::jlong)
JHPC_MV2J_INSTANTIATE(minijvm::jfloat)
JHPC_MV2J_INSTANTIATE(minijvm::jdouble)
#undef JHPC_MV2J_INSTANTIATE

}  // namespace jhpc::mv2j
