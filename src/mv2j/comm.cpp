// ByteBuffer paths and communicator management of the MVAPICH2-J
// bindings. This is the paper's Figure 4 pipeline: reference in, one JNI
// crossing, GetDirectBufferAddress, native MPI call on the raw pointer.
#include "jhpc/mv2j/comm.hpp"

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mv2j {

namespace {
std::size_t payload_bytes(int count, const Datatype& type) {
  JHPC_REQUIRE(count >= 0, "negative element count");
  return static_cast<std::size_t>(count) * type.size();
}

// Memory span `count` elements of `type` occupy in a buffer: blocks laid
// out extent() apart. The capacity check must cover this for derived
// types — size() undercounts the stride gaps. Layouts reaching below the
// buffer start (negative lower bound) cannot be addressed through a
// ByteBuffer handed over by its base pointer.
std::size_t span_bytes(int count, const Datatype& type, const char* what) {
  JHPC_REQUIRE(count >= 0, "negative element count");
  if (type.isBasic()) return payload_bytes(count, type);
  JHPC_REQUIRE(type.native().true_lb() >= 0,
               std::string(what) +
                   ": datatypes with a negative lower bound are not "
                   "addressable through a ByteBuffer");
  return static_cast<std::size_t>(count) * type.extent();
}

// Collectives with no typed substrate form yet.
std::size_t basic_only(int count, const Datatype& type, const char* what) {
  JHPC_REQUIRE(count >= 0, "negative element count");
  if (!type.isBasic()) {
    throw UnsupportedOperationError(
        std::string(what) +
        ": derived datatypes are not supported on this collective (typed "
        "forms exist for point-to-point and the non-vectored collectives)");
  }
  return static_cast<std::size_t>(count) * type.size();
}
}  // namespace

std::byte* Comm::buffer_address(const ByteBuffer& buf, std::size_t bytes,
                                const char* what) const {
  minijvm::JniEnv& jni = env_->jvm_->jni();
  void* p = jni.get_direct_buffer_address(buf);
  if (p == nullptr) {
    throw UnsupportedOperationError(
        std::string(what) +
        ": the bindings require a direct ByteBuffer (heap buffers have no "
        "stable native address)");
  }
  JHPC_REQUIRE(bytes <= jni.get_direct_buffer_capacity(buf),
               std::string(what) + ": count exceeds buffer capacity");
  return static_cast<std::byte*>(p);
}

// --- Point-to-point: ByteBuffer ------------------------------------------------

void Comm::send(const ByteBuffer& buf, int count, const Datatype& type,
                int dest, int tag) const {
  JHPC_REQUIRE(valid(), "send on invalid communicator");
  const std::size_t span = span_bytes(count, type, "send");
  env_->jvm_->jni().crossing();
  const std::byte* p = buffer_address(buf, span, "send");
  if (type.isBasic()) {
    native_.send(p, payload_bytes(count, type), dest, tag);
  } else {
    native_.send(p, count, type.native(), dest, tag);
  }
}

Status Comm::recv(ByteBuffer& buf, int count, const Datatype& type,
                  int source, int tag) const {
  JHPC_REQUIRE(valid(), "recv on invalid communicator");
  const std::size_t span = span_bytes(count, type, "recv");
  env_->jvm_->jni().crossing();
  std::byte* p = buffer_address(buf, span, "recv");
  minimpi::Status st;
  if (type.isBasic()) {
    native_.recv(p, payload_bytes(count, type), source, tag, &st);
  } else {
    native_.recv(p, count, type.native(), source, tag, &st);
  }
  return Status(st);
}

Request Comm::iSend(const ByteBuffer& buf, int count, const Datatype& type,
                    int dest, int tag) const {
  JHPC_REQUIRE(valid(), "iSend on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iSend");
  env_->jvm_->jni().crossing();
  const std::byte* p = buffer_address(buf, span, "iSend");
  if (type.isBasic()) {
    return Request(native_.isend(p, payload_bytes(count, type), dest, tag),
                   nullptr);
  }
  return Request(native_.isend(p, count, type.native(), dest, tag), nullptr);
}

Request Comm::iRecv(ByteBuffer& buf, int count, const Datatype& type,
                    int source, int tag) const {
  JHPC_REQUIRE(valid(), "iRecv on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iRecv");
  env_->jvm_->jni().crossing();
  std::byte* p = buffer_address(buf, span, "iRecv");
  if (type.isBasic()) {
    return Request(native_.irecv(p, payload_bytes(count, type), source, tag),
                   nullptr);
  }
  return Request(native_.irecv(p, count, type.native(), source, tag),
                 nullptr);
}

Status Comm::sendRecv(const ByteBuffer& sendbuf, int sendcount,
                      const Datatype& sendtype, int dest, int sendtag,
                      ByteBuffer& recvbuf, int recvcount,
                      const Datatype& recvtype, int source,
                      int recvtag) const {
  JHPC_REQUIRE(valid(), "sendRecv on invalid communicator");
  const std::size_t sspan = span_bytes(sendcount, sendtype, "sendRecv");
  const std::size_t rspan = span_bytes(recvcount, recvtype, "sendRecv");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, sspan, "sendRecv");
  std::byte* rp = buffer_address(recvbuf, rspan, "sendRecv");
  minimpi::Status st;
  if (sendtype.isBasic() && recvtype.isBasic()) {
    native_.sendrecv(sp, payload_bytes(sendcount, sendtype), dest, sendtag,
                     rp, payload_bytes(recvcount, recvtype), source, recvtag,
                     &st);
  } else {
    native_.sendrecv(sp, sendcount, sendtype.native(), dest, sendtag, rp,
                     recvcount, recvtype.native(), source, recvtag, &st);
  }
  return Status(st);
}

Status Comm::probe(int source, int tag) const {
  JHPC_REQUIRE(valid(), "probe on invalid communicator");
  env_->jvm_->jni().crossing();
  return Status(native_.probe(source, tag));
}

bool Comm::iProbe(int source, int tag, Status* status) const {
  JHPC_REQUIRE(valid(), "iProbe on invalid communicator");
  env_->jvm_->jni().crossing();
  minimpi::Status st;
  if (!native_.iprobe(source, tag, &st)) return false;
  if (status != nullptr) *status = Status(st);
  return true;
}

// --- Blocking collectives: ByteBuffer ------------------------------------------

void Comm::barrier() const {
  JHPC_REQUIRE(valid(), "barrier on invalid communicator");
  env_->jvm_->jni().crossing();
  native_.barrier();
}

void Comm::bcast(ByteBuffer& buf, int count, const Datatype& type,
                 int root) const {
  JHPC_REQUIRE(valid(), "bcast on invalid communicator");
  const std::size_t span = span_bytes(count, type, "bcast");
  env_->jvm_->jni().crossing();
  std::byte* p = buffer_address(buf, span, "bcast");
  if (type.isBasic()) {
    native_.bcast(p, payload_bytes(count, type), root);
  } else {
    native_.bcast(p, count, type.native(), root);
  }
}

void Comm::reduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
                  const Datatype& type, const Op& op, int root) const {
  JHPC_REQUIRE(valid(), "reduce on invalid communicator");
  const std::size_t span = span_bytes(count, type, "reduce");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "reduce");
  // Non-root ranks may pass any recv buffer; only the root's is written.
  std::byte* rp = getRank() == root
                      ? buffer_address(recvbuf, span, "reduce")
                      : buffer_address(recvbuf, 0, "reduce");
  if (type.isBasic()) {
    native_.reduce(sp, rp, static_cast<std::size_t>(count), type.kind(),
                   op.native(), root);
  } else {
    native_.reduce(sp, rp, count, type.native(), op.native(), root);
  }
}

void Comm::allReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                     int count, const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "allReduce on invalid communicator");
  const std::size_t span = span_bytes(count, type, "allReduce");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "allReduce");
  std::byte* rp = buffer_address(recvbuf, span, "allReduce");
  if (type.isBasic()) {
    native_.allreduce(sp, rp, static_cast<std::size_t>(count), type.kind(),
                      op.native());
  } else {
    native_.allreduce(sp, rp, count, type.native(), op.native());
  }
}

void Comm::reduceScatterBlock(const ByteBuffer& sendbuf,
                              ByteBuffer& recvbuf, int recvcount,
                              const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "reduceScatterBlock on invalid communicator");
  const std::size_t block = basic_only(recvcount, type, "reduceScatterBlock");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(
      sendbuf, block * static_cast<std::size_t>(getSize()),
      "reduceScatterBlock");
  std::byte* rp = buffer_address(recvbuf, block, "reduceScatterBlock");
  native_.reduce_scatter_block(sp, rp,
                               static_cast<std::size_t>(recvcount),
                               type.kind(), op.native());
}

void Comm::scan(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
                const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "scan on invalid communicator");
  const std::size_t bytes = basic_only(count, type, "scan");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, bytes, "scan");
  std::byte* rp = buffer_address(recvbuf, bytes, "scan");
  native_.scan(sp, rp, static_cast<std::size_t>(count), type.kind(),
               op.native());
}

void Comm::gather(const ByteBuffer& sendbuf, int count, const Datatype& type,
                  ByteBuffer& recvbuf, int root) const {
  JHPC_REQUIRE(valid(), "gather on invalid communicator");
  const std::size_t span = span_bytes(count, type, "gather");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "gather");
  std::byte* rp =
      getRank() == root
          ? buffer_address(recvbuf,
                           span * static_cast<std::size_t>(getSize()),
                           "gather")
          : nullptr;
  if (type.isBasic()) {
    native_.gather(sp, payload_bytes(count, type), rp, root);
  } else {
    native_.gather(sp, count, type.native(), rp, root);
  }
}

void Comm::scatter(const ByteBuffer& sendbuf, int count,
                   const Datatype& type, ByteBuffer& recvbuf,
                   int root) const {
  JHPC_REQUIRE(valid(), "scatter on invalid communicator");
  const std::size_t span = span_bytes(count, type, "scatter");
  env_->jvm_->jni().crossing();
  const std::byte* sp =
      getRank() == root
          ? buffer_address(sendbuf,
                           span * static_cast<std::size_t>(getSize()),
                           "scatter")
          : nullptr;
  std::byte* rp = buffer_address(recvbuf, span, "scatter");
  if (type.isBasic()) {
    native_.scatter(sp, payload_bytes(count, type), rp, root);
  } else {
    native_.scatter(sp, count, type.native(), rp, root);
  }
}

void Comm::allGather(const ByteBuffer& sendbuf, int count,
                     const Datatype& type, ByteBuffer& recvbuf) const {
  JHPC_REQUIRE(valid(), "allGather on invalid communicator");
  const std::size_t span = span_bytes(count, type, "allGather");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "allGather");
  std::byte* rp = buffer_address(
      recvbuf, span * static_cast<std::size_t>(getSize()), "allGather");
  if (type.isBasic()) {
    native_.allgather(sp, payload_bytes(count, type), rp);
  } else {
    native_.allgather(sp, count, type.native(), rp);
  }
}

void Comm::allToAll(const ByteBuffer& sendbuf, int count,
                    const Datatype& type, ByteBuffer& recvbuf) const {
  JHPC_REQUIRE(valid(), "allToAll on invalid communicator");
  const std::size_t span = span_bytes(count, type, "allToAll");
  const auto total = span * static_cast<std::size_t>(getSize());
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, total, "allToAll");
  std::byte* rp = buffer_address(recvbuf, total, "allToAll");
  if (type.isBasic()) {
    native_.alltoall(sp, payload_bytes(count, type), rp);
  } else {
    native_.alltoall(sp, count, type.native(), rp);
  }
}

// --- Nonblocking collectives: ByteBuffer ----------------------------------------

Request Comm::iBarrier() const {
  JHPC_REQUIRE(valid(), "iBarrier on invalid communicator");
  env_->jvm_->jni().crossing();
  return Request(native_.ibarrier(), nullptr);
}

Request Comm::iBcast(ByteBuffer& buf, int count, const Datatype& type,
                     int root) const {
  JHPC_REQUIRE(valid(), "iBcast on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iBcast");
  env_->jvm_->jni().crossing();
  std::byte* p = buffer_address(buf, span, "iBcast");
  if (type.isBasic()) {
    return Request(native_.ibcast(p, payload_bytes(count, type), root),
                   nullptr);
  }
  return Request(native_.ibcast(p, count, type.native(), root), nullptr);
}

Request Comm::iReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                      int count, const Datatype& type, const Op& op,
                      int root) const {
  JHPC_REQUIRE(valid(), "iReduce on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iReduce");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "iReduce");
  // Non-root ranks may pass any recv buffer; only the root's is written.
  std::byte* rp = getRank() == root
                      ? buffer_address(recvbuf, span, "iReduce")
                      : buffer_address(recvbuf, 0, "iReduce");
  if (type.isBasic()) {
    return Request(native_.ireduce(sp, rp, static_cast<std::size_t>(count),
                                   type.kind(), op.native(), root),
                   nullptr);
  }
  return Request(
      native_.ireduce(sp, rp, count, type.native(), op.native(), root),
      nullptr);
}

Request Comm::iAllReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                         int count, const Datatype& type,
                         const Op& op) const {
  JHPC_REQUIRE(valid(), "iAllReduce on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iAllReduce");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "iAllReduce");
  std::byte* rp = buffer_address(recvbuf, span, "iAllReduce");
  if (type.isBasic()) {
    return Request(native_.iallreduce(sp, rp, static_cast<std::size_t>(count),
                                      type.kind(), op.native()),
                   nullptr);
  }
  return Request(
      native_.iallreduce(sp, rp, count, type.native(), op.native()), nullptr);
}

Request Comm::iGather(const ByteBuffer& sendbuf, int count,
                      const Datatype& type, ByteBuffer& recvbuf,
                      int root) const {
  JHPC_REQUIRE(valid(), "iGather on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iGather");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "iGather");
  std::byte* rp =
      getRank() == root
          ? buffer_address(recvbuf,
                           span * static_cast<std::size_t>(getSize()),
                           "iGather")
          : buffer_address(recvbuf, 0, "iGather");
  if (type.isBasic()) {
    return Request(native_.igather(sp, payload_bytes(count, type), rp, root),
                   nullptr);
  }
  return Request(native_.igather(sp, count, type.native(), rp, root),
                 nullptr);
}

Request Comm::iScatter(const ByteBuffer& sendbuf, int count,
                       const Datatype& type, ByteBuffer& recvbuf,
                       int root) const {
  JHPC_REQUIRE(valid(), "iScatter on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iScatter");
  env_->jvm_->jni().crossing();
  const std::byte* sp =
      getRank() == root
          ? buffer_address(sendbuf,
                           span * static_cast<std::size_t>(getSize()),
                           "iScatter")
          : buffer_address(sendbuf, 0, "iScatter");
  std::byte* rp = buffer_address(recvbuf, span, "iScatter");
  if (type.isBasic()) {
    return Request(native_.iscatter(sp, payload_bytes(count, type), rp, root),
                   nullptr);
  }
  return Request(native_.iscatter(sp, count, type.native(), rp, root),
                 nullptr);
}

Request Comm::iAllGather(const ByteBuffer& sendbuf, int count,
                         const Datatype& type, ByteBuffer& recvbuf) const {
  JHPC_REQUIRE(valid(), "iAllGather on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iAllGather");
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span, "iAllGather");
  std::byte* rp = buffer_address(
      recvbuf, span * static_cast<std::size_t>(getSize()), "iAllGather");
  if (type.isBasic()) {
    return Request(native_.iallgather(sp, payload_bytes(count, type), rp),
                   nullptr);
  }
  return Request(native_.iallgather(sp, count, type.native(), rp), nullptr);
}

Request Comm::iAllToAll(const ByteBuffer& sendbuf, int count,
                        const Datatype& type, ByteBuffer& recvbuf) const {
  JHPC_REQUIRE(valid(), "iAllToAll on invalid communicator");
  const std::size_t span = span_bytes(count, type, "iAllToAll");
  const auto total = span * static_cast<std::size_t>(getSize());
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, total, "iAllToAll");
  std::byte* rp = buffer_address(recvbuf, total, "iAllToAll");
  if (type.isBasic()) {
    return Request(native_.ialltoall(sp, payload_bytes(count, type), rp),
                   nullptr);
  }
  return Request(native_.ialltoall(sp, count, type.native(), rp), nullptr);
}

// --- Vectored collectives: ByteBuffer -------------------------------------------

namespace {
// Convert element counts/displacements to byte vectors.
void to_bytes(std::span<const int> in, std::size_t el,
              std::vector<std::size_t>* out) {
  out->clear();
  out->reserve(in.size());
  for (int v : in) {
    JHPC_REQUIRE(v >= 0, "negative count/displacement");
    out->push_back(static_cast<std::size_t>(v) * el);
  }
}
}  // namespace

void Comm::gatherv(const ByteBuffer& sendbuf, int sendcount,
                   const Datatype& type, ByteBuffer& recvbuf,
                   std::span<const int> recvcounts,
                   std::span<const int> displs, int root) const {
  JHPC_REQUIRE(valid(), "gatherv on invalid communicator");
  const std::size_t sbytes = basic_only(sendcount, type, "gatherv");
  std::vector<std::size_t> counts, offs;
  to_bytes(recvcounts, type.size(), &counts);
  to_bytes(displs, type.size(), &offs);
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, sbytes, "gatherv");
  std::byte* rp = nullptr;
  if (getRank() == root) {
    std::size_t span_end = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
      span_end = std::max(span_end, offs[i] + counts[i]);
    rp = buffer_address(recvbuf, span_end, "gatherv");
  }
  native_.gatherv(sp, sbytes, rp, counts, offs, root);
}

void Comm::scatterv(const ByteBuffer& sendbuf,
                    std::span<const int> sendcounts,
                    std::span<const int> displs, const Datatype& type,
                    ByteBuffer& recvbuf, int recvcount, int root) const {
  JHPC_REQUIRE(valid(), "scatterv on invalid communicator");
  const std::size_t rbytes = basic_only(recvcount, type, "scatterv");
  std::vector<std::size_t> counts, offs;
  to_bytes(sendcounts, type.size(), &counts);
  to_bytes(displs, type.size(), &offs);
  env_->jvm_->jni().crossing();
  const std::byte* sp = nullptr;
  if (getRank() == root) {
    std::size_t span_end = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
      span_end = std::max(span_end, offs[i] + counts[i]);
    sp = buffer_address(sendbuf, span_end, "scatterv");
  }
  std::byte* rp = buffer_address(recvbuf, rbytes, "scatterv");
  native_.scatterv(sp, counts, offs, rp, rbytes, root);
}

void Comm::allGatherv(const ByteBuffer& sendbuf, int sendcount,
                      const Datatype& type, ByteBuffer& recvbuf,
                      std::span<const int> recvcounts,
                      std::span<const int> displs) const {
  JHPC_REQUIRE(valid(), "allGatherv on invalid communicator");
  const std::size_t sbytes = basic_only(sendcount, type, "allGatherv");
  std::vector<std::size_t> counts, offs;
  to_bytes(recvcounts, type.size(), &counts);
  to_bytes(displs, type.size(), &offs);
  std::size_t span_end = 0;
  for (std::size_t i = 0; i < counts.size(); ++i)
    span_end = std::max(span_end, offs[i] + counts[i]);
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, sbytes, "allGatherv");
  std::byte* rp = buffer_address(recvbuf, span_end, "allGatherv");
  native_.allgatherv(sp, sbytes, rp, counts, offs);
}

void Comm::allToAllv(const ByteBuffer& sendbuf,
                     std::span<const int> sendcounts,
                     std::span<const int> sdispls, const Datatype& type,
                     ByteBuffer& recvbuf, std::span<const int> recvcounts,
                     std::span<const int> rdispls) const {
  JHPC_REQUIRE(valid(), "allToAllv on invalid communicator");
  (void)basic_only(0, type, "allToAllv");
  std::vector<std::size_t> sc, so, rc, ro;
  to_bytes(sendcounts, type.size(), &sc);
  to_bytes(sdispls, type.size(), &so);
  to_bytes(recvcounts, type.size(), &rc);
  to_bytes(rdispls, type.size(), &ro);
  std::size_t s_end = 0, r_end = 0;
  for (std::size_t i = 0; i < sc.size(); ++i)
    s_end = std::max(s_end, so[i] + sc[i]);
  for (std::size_t i = 0; i < rc.size(); ++i)
    r_end = std::max(r_end, ro[i] + rc[i]);
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, s_end, "allToAllv");
  std::byte* rp = buffer_address(recvbuf, r_end, "allToAllv");
  native_.alltoallv(sp, sc, so, rp, rc, ro);
}

// --- Communicator management ------------------------------------------------------

Comm Comm::dup() const {
  JHPC_REQUIRE(valid(), "dup on invalid communicator");
  env_->jvm_->jni().crossing();
  return Comm(env_, native_.dup());
}

Comm Comm::split(int color, int key) const {
  JHPC_REQUIRE(valid(), "split on invalid communicator");
  env_->jvm_->jni().crossing();
  minimpi::Comm sub = native_.split(color, key);
  if (!sub.valid()) return Comm{};
  return Comm(env_, sub);
}

// --- Fault tolerance (ULFM) --------------------------------------------------

void Comm::setErrhandler(Errhandler eh) const {
  JHPC_REQUIRE(valid(), "setErrhandler on invalid communicator");
  env_->jvm_->jni().crossing();
  native_.set_errhandler(eh);
}

Errhandler Comm::getErrhandler() const {
  JHPC_REQUIRE(valid(), "getErrhandler on invalid communicator");
  return native_.errhandler();
}

void Comm::revoke() const {
  JHPC_REQUIRE(valid(), "revoke on invalid communicator");
  env_->jvm_->jni().crossing();
  native_.revoke();
}

Comm Comm::shrink() const {
  JHPC_REQUIRE(valid(), "shrink on invalid communicator");
  env_->jvm_->jni().crossing();
  return Comm(env_, native_.shrink());
}

int Comm::agree(int flag) const {
  JHPC_REQUIRE(valid(), "agree on invalid communicator");
  env_->jvm_->jni().crossing();
  return native_.agree(flag);
}

std::vector<int> Comm::getFailedRanks() const {
  JHPC_REQUIRE(valid(), "getFailedRanks on invalid communicator");
  return native_.failed_ranks();
}

}  // namespace jhpc::mv2j
