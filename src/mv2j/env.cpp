#include "jhpc/mv2j/env.hpp"

#include "jhpc/support/error.hpp"

namespace jhpc::mv2j {

minimpi::UniverseConfig RunOptions::universe_config() const {
  minimpi::UniverseConfig cfg;
  cfg.world_size = ranks;
  cfg.fabric = fabric;
  cfg.eager_limit = eager_limit;
  cfg.suite = hier_collectives
                  ? minimpi::CollectiveSuite::kHier
                  : minimpi::CollectiveSuite::kMv2;  // "MVAPICH2" underneath
  cfg.apply_suite_profile();
  cfg.obs = obs;
  return cfg;
}

Env::Env(minimpi::Comm& native_world, const RunOptions& options)
    : jvm_(std::make_unique<minijvm::Jvm>(options.jvm)),
      pool_(std::make_unique<mpjbuf::BufferFactory>(options.pool)),
      world_(this, native_world) {
  // Surface this rank's pool stats through the job-wide pvar registry
  // (COMM_WORLD rank == world rank).
  if (obs::PvarRegistry* reg = native_world.pvars())
    pool_->bind_pvars(*reg, native_world.rank());
}

Env::~Env() = default;

std::int64_t Env::readPvar(const std::string& name) const {
  obs::PvarRegistry* reg = pvars();
  if (reg == nullptr) return 0;
  return reg->read(reg->find(name), world_.native().rank());
}

obs::HistReading Env::readHistogram(const std::string& name) const {
  obs::PvarRegistry* reg = pvars();
  if (reg == nullptr) return {};
  return reg->read_hist(reg->find(name), world_.native().rank());
}

std::int64_t Env::histogramPercentile(const std::string& name,
                                      double p) const {
  return readHistogram(name).percentile(p);
}

void run(const RunOptions& options,
         const std::function<void(Env&)>& rank_main) {
  JHPC_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  minimpi::Universe::launch(options.universe_config(),
                            [&options, &rank_main](minimpi::Comm& world) {
                              Env env(world, options);
                              rank_main(env);
                            });
}

}  // namespace jhpc::mv2j
