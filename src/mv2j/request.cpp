#include "jhpc/mv2j/request.hpp"

namespace jhpc::mv2j {

Status Request::waitFor() {
  minimpi::Status st;
  native_.wait(&st);
  if (completion_ != nullptr) {
    if (completion_->on_complete) completion_->on_complete(st);
    completion_.reset();
  }
  return Status(st);
}

bool Request::test(Status* status) {
  minimpi::Status st;
  if (!native_.test(&st)) return false;
  if (completion_ != nullptr) {
    if (completion_->on_complete) completion_->on_complete(st);
    completion_.reset();
  }
  if (status != nullptr) *status = Status(st);
  return true;
}

void Request::waitAll(std::span<Request> requests) {
  for (Request& r : requests) r.waitFor();
}

}  // namespace jhpc::mv2j
