// MVAPICH2-J service mode: submit/await jobs against a resident jhpcd
// fleet instead of one-shot run() launches.
//
// The Java-side analogue is a long-lived scheduler JVM that keeps the
// native library initialized and accepts job submissions; each job
// still sees the ordinary per-rank Env. See docs/SERVICE.md.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "jhpc/jhpcd/jhpcd.hpp"
#include "jhpc/mv2j/env.hpp"

namespace jhpc::mv2j {

/// One service submission: a diagnostic name, the ordinary RunOptions,
/// and the jhpcd scheduling attributes.
struct ServiceJobOptions {
  std::string name;
  RunOptions run{};
  jhpcd::JobClass job_class = jhpcd::JobClass::kLatency;
  int priority = 0;
  jhpcd::JobQuota quota{};
};

/// A resident MVAPICH2-J scheduler. Thin facade over jhpcd::JobManager
/// that wraps each submission's rank body in the bindings Env, exactly
/// as run() does for a one-shot job.
class Service {
 public:
  explicit Service(jhpcd::ServiceConfig config = jhpcd::ServiceConfig{})
      : manager_(config) {}

  /// Queue a job; same admission/quota errors as JobManager::submit.
  jhpcd::JobHandle submit(const ServiceJobOptions& options,
                          std::function<void(Env&)> rank_main);

  /// Convenience: default scheduling attributes.
  jhpcd::JobHandle submit(const std::string& name, const RunOptions& options,
                          std::function<void(Env&)> rank_main) {
    ServiceJobOptions job;
    job.name = name;
    job.run = options;
    return submit(job, std::move(rank_main));
  }

  void drain() { manager_.drain(); }
  void shutdown() { manager_.shutdown(); }
  jhpcd::ServiceStats stats() const { return manager_.stats(); }

  jhpcd::JobManager& manager() { return manager_; }
  const jhpcd::JobManager& manager() const { return manager_; }

 private:
  jhpcd::JobManager manager_;
};

}  // namespace jhpc::mv2j
