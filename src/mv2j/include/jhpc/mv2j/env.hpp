// The per-rank MVAPICH2-J environment and the job runner.
//
// In the paper's deployment each MPI rank is a JVM process that loads the
// MVAPICH2-J bindings on top of the native MVAPICH2 library. Here each
// rank thread owns an Env: its simulated JVM (managed heap + JNI), its
// mpjbuf buffer pool, and COMM_WORLD bound to the native communicator.
// The native library is a minimpi Universe configured with the mv2
// collective suite — "MVAPICH2" in this reproduction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/minimpi/universe.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"
#include "jhpc/mv2j/comm.hpp"
#include "jhpc/obs/obs.hpp"

namespace jhpc::mv2j {

/// Job-level options (the mpirun line plus JVM flags).
struct RunOptions {
  int ranks = 2;
  netsim::FabricConfig fabric{};
  std::size_t eager_limit = 16 * 1024;
  minijvm::JvmConfig jvm = minijvm::JvmConfig::from_env();
  mpjbuf::FactoryConfig pool = mpjbuf::FactoryConfig::from_env();
  /// Observability switches (JHPC_PVARS / JHPC_TRACE by default).
  obs::ObsConfig obs = obs::ObsConfig::from_env();
  /// Run collectives on the topology-aware hierarchical engine instead
  /// of the mv2 trees (JHPC_COLL=hier equivalent; see docs/API.md).
  bool hier_collectives = false;

  /// The native universe configuration this implies (suite forced to
  /// kMv2 — these bindings run on "MVAPICH2" — unless
  /// `hier_collectives` selects the hierarchical engine).
  minimpi::UniverseConfig universe_config() const;
};

/// One rank's bindings environment.
class Env {
 public:
  Env(minimpi::Comm& native_world, const RunOptions& options);
  ~Env();
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// MPI.COMM_WORLD.
  Comm& COMM_WORLD() { return world_; }
  minijvm::Jvm& jvm() { return *jvm_; }
  mpjbuf::BufferFactory& pool() { return *pool_; }

  // --- MPI_T-style tool access (the Java side's MPI.T) -------------------
  /// The job's performance-variable registry (values indexed by world
  /// rank), or nullptr when observability is disabled.
  obs::PvarRegistry* pvars() const { return world_.native().pvars(); }
  /// This rank's value of pvar `name`; 0 when unknown or disabled.
  std::int64_t readPvar(const std::string& name) const;
  /// This rank's decoded distribution of histogram pvar `name` (raw
  /// registered units, virtual ns for latency histograms); an empty
  /// reading when unknown, not a histogram, or disabled.
  obs::HistReading readHistogram(const std::string& name) const;
  /// Percentile `p` (0..100) of this rank's histogram `name`; 0 when
  /// empty or unknown.
  std::int64_t histogramPercentile(const std::string& name, double p) const;

  /// Convenience allocators mirroring a Java program's
  /// `ByteBuffer.allocateDirect(...)` / `new T[n]`.
  ByteBuffer newDirectBuffer(std::size_t bytes) {
    return ByteBuffer::allocate_direct(bytes);
  }
  template <JavaPrimitive T>
  JArray<T> newArray(std::size_t n) {
    return jvm_->new_array<T>(n);
  }

 private:
  friend class Comm;
  std::unique_ptr<minijvm::Jvm> jvm_;
  std::unique_ptr<mpjbuf::BufferFactory> pool_;
  Comm world_;
};

/// Launch an MVAPICH2-J job: spin up the native universe, give each rank
/// an Env, run `rank_main` everywhere, join.
void run(const RunOptions& options, const std::function<void(Env&)>& rank_main);

}  // namespace jhpc::mv2j
