// The MVAPICH2-J communicator: the paper's contribution, in API form.
//
// Two families of entry points, as in the Open MPI Java bindings API the
// paper adopts:
//
//   * direct NIO ByteBuffers — passed by reference through the "JNI"
//     layer; the native side obtains the stable storage pointer with
//     GetDirectBufferAddress and hands it straight to the native library
//     (paper Figure 4; zero copy).
//
//   * Java arrays — staged through the mpjbuf buffering layer: acquire a
//     pooled direct buffer, bulk-copy the array onto it, pass that buffer
//     through JNI (paper Figure 3; one copy each side, no per-message
//     allocation). Unlike the Open MPI Java bindings, this works for
//     non-blocking point-to-point operations too, because the staging
//     buffer lives until the request completes.
//
// The adopted API has no `offset` argument on communication primitives;
// because the buffering layer supports sub-range staging natively, this
// implementation also ships the offset overloads the paper suggests
// re-introducing (Section IV-B) — see "API extension" below.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/jarray.hpp"
#include "jhpc/minimpi/comm.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"
#include "jhpc/mv2j/request.hpp"
#include "jhpc/mv2j/types.hpp"

namespace jhpc::mv2j {

using minijvm::ByteBuffer;
using minijvm::JArray;
using minijvm::JavaPrimitive;

class Env;

/// mpi.Comm / mpi.Intracomm of the MVAPICH2-J bindings.
class Comm {
 public:
  Comm() = default;

  bool valid() const { return env_ != nullptr && native_.valid(); }
  int getRank() const { return native_.rank(); }
  int getSize() const { return native_.size(); }

  // --- Point-to-point: direct ByteBuffer API ------------------------------
  /// Send `count` elements of `type` starting at buffer index 0.
  void send(const ByteBuffer& buf, int count, const Datatype& type, int dest,
            int tag) const;
  Status recv(ByteBuffer& buf, int count, const Datatype& type, int source,
              int tag) const;
  Request iSend(const ByteBuffer& buf, int count, const Datatype& type,
                int dest, int tag) const;
  Request iRecv(ByteBuffer& buf, int count, const Datatype& type, int source,
                int tag) const;

  // --- Point-to-point: Java array API (staged through mpjbuf) -------------
  template <JavaPrimitive T>
  void send(const JArray<T>& buf, int count, const Datatype& type, int dest,
            int tag) const;
  template <JavaPrimitive T>
  Status recv(JArray<T>& buf, int count, const Datatype& type, int source,
              int tag) const;
  /// Supported for arrays (unlike Open MPI-J): the pooled staging buffer
  /// lives inside the returned Request.
  template <JavaPrimitive T>
  Request iSend(const JArray<T>& buf, int count, const Datatype& type,
                int dest, int tag) const;
  template <JavaPrimitive T>
  Request iRecv(JArray<T>& buf, int count, const Datatype& type, int source,
                int tag) const;

  // --- API extension: sub-range ("offset") array communication -------------
  // The mpiJava 1.2 / MPJ APIs had an `offset` argument that the Open MPI
  // Java API dropped; the paper (Section IV-B) notes the buffering layer
  // supports it for free and suggests re-introducing it — these overloads
  // do exactly that. `offset` is in elements of T.
  template <JavaPrimitive T>
  void send(const JArray<T>& buf, int offset, int count,
            const Datatype& type, int dest, int tag) const;
  template <JavaPrimitive T>
  Status recv(JArray<T>& buf, int offset, int count, const Datatype& type,
              int source, int tag) const;
  template <JavaPrimitive T>
  Request iSend(const JArray<T>& buf, int offset, int count,
                const Datatype& type, int dest, int tag) const;
  template <JavaPrimitive T>
  Request iRecv(JArray<T>& buf, int offset, int count, const Datatype& type,
                int source, int tag) const;

  // --- Probing -------------------------------------------------------------
  /// Block until a matching message is pending; returns its envelope.
  Status probe(int source, int tag) const;
  /// Non-blocking probe: true + filled `status` when a message is pending.
  bool iProbe(int source, int tag, Status* status) const;

  /// Combined send/recv (buffers).
  Status sendRecv(const ByteBuffer& sendbuf, int sendcount,
                  const Datatype& sendtype, int dest, int sendtag,
                  ByteBuffer& recvbuf, int recvcount,
                  const Datatype& recvtype, int source, int recvtag) const;

  // --- Blocking collectives: ByteBuffer API --------------------------------
  void barrier() const;
  void bcast(ByteBuffer& buf, int count, const Datatype& type,
             int root) const;
  void reduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
              const Datatype& type, const Op& op, int root) const;
  void allReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
                 const Datatype& type, const Op& op) const;
  /// Reduction of size()*recvcount elements; rank i receives block i
  /// (MPI_Reduce_scatter_block).
  void reduceScatterBlock(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                          int recvcount, const Datatype& type,
                          const Op& op) const;
  /// Inclusive prefix reduction (MPI_Scan).
  void scan(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
            const Datatype& type, const Op& op) const;
  void gather(const ByteBuffer& sendbuf, int count, const Datatype& type,
              ByteBuffer& recvbuf, int root) const;
  void scatter(const ByteBuffer& sendbuf, int count, const Datatype& type,
               ByteBuffer& recvbuf, int root) const;
  void allGather(const ByteBuffer& sendbuf, int count, const Datatype& type,
                 ByteBuffer& recvbuf) const;
  void allToAll(const ByteBuffer& sendbuf, int count, const Datatype& type,
                ByteBuffer& recvbuf) const;

  // --- Nonblocking collectives: ByteBuffer API -----------------------------
  // Backed by the minimpi schedule engine: the operation is posted here
  // and progresses inside the returned Request's test()/waitFor(). The
  // buffers must stay alive and untouched until the request completes.
  // Direct-buffer only: array payloads would need request-held staging,
  // and the zero-copy path is what a nonblocking collective is for.
  Request iBarrier() const;
  Request iBcast(ByteBuffer& buf, int count, const Datatype& type,
                 int root) const;
  Request iReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
                  const Datatype& type, const Op& op, int root) const;
  Request iAllReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                     int count, const Datatype& type, const Op& op) const;
  Request iGather(const ByteBuffer& sendbuf, int count, const Datatype& type,
                  ByteBuffer& recvbuf, int root) const;
  Request iScatter(const ByteBuffer& sendbuf, int count,
                   const Datatype& type, ByteBuffer& recvbuf, int root) const;
  Request iAllGather(const ByteBuffer& sendbuf, int count,
                     const Datatype& type, ByteBuffer& recvbuf) const;
  Request iAllToAll(const ByteBuffer& sendbuf, int count,
                    const Datatype& type, ByteBuffer& recvbuf) const;

  // --- Blocking collectives: Java array API ----------------------------------
  template <JavaPrimitive T>
  void bcast(JArray<T>& buf, int count, const Datatype& type,
             int root) const;
  template <JavaPrimitive T>
  void reduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
              const Datatype& type, const Op& op, int root) const;
  template <JavaPrimitive T>
  void allReduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                 const Datatype& type, const Op& op) const;
  template <JavaPrimitive T>
  void reduceScatterBlock(const JArray<T>& sendbuf, JArray<T>& recvbuf,
                          int recvcount, const Datatype& type,
                          const Op& op) const;
  template <JavaPrimitive T>
  void scan(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
            const Datatype& type, const Op& op) const;
  template <JavaPrimitive T>
  void gather(const JArray<T>& sendbuf, int count, const Datatype& type,
              JArray<T>& recvbuf, int root) const;
  template <JavaPrimitive T>
  void scatter(const JArray<T>& sendbuf, int count, const Datatype& type,
               JArray<T>& recvbuf, int root) const;
  template <JavaPrimitive T>
  void allGather(const JArray<T>& sendbuf, int count, const Datatype& type,
                 JArray<T>& recvbuf) const;
  template <JavaPrimitive T>
  void allToAll(const JArray<T>& sendbuf, int count, const Datatype& type,
                JArray<T>& recvbuf) const;

  // --- Vectored blocking collectives (counts/displs in elements) -----------
  void gatherv(const ByteBuffer& sendbuf, int sendcount,
               const Datatype& type, ByteBuffer& recvbuf,
               std::span<const int> recvcounts, std::span<const int> displs,
               int root) const;
  void scatterv(const ByteBuffer& sendbuf, std::span<const int> sendcounts,
                std::span<const int> displs, const Datatype& type,
                ByteBuffer& recvbuf, int recvcount, int root) const;
  void allGatherv(const ByteBuffer& sendbuf, int sendcount,
                  const Datatype& type, ByteBuffer& recvbuf,
                  std::span<const int> recvcounts,
                  std::span<const int> displs) const;
  void allToAllv(const ByteBuffer& sendbuf, std::span<const int> sendcounts,
                 std::span<const int> sdispls, const Datatype& type,
                 ByteBuffer& recvbuf, std::span<const int> recvcounts,
                 std::span<const int> rdispls) const;

  template <JavaPrimitive T>
  void gatherv(const JArray<T>& sendbuf, int sendcount, const Datatype& type,
               JArray<T>& recvbuf, std::span<const int> recvcounts,
               std::span<const int> displs, int root) const;
  template <JavaPrimitive T>
  void scatterv(const JArray<T>& sendbuf, std::span<const int> sendcounts,
                std::span<const int> displs, const Datatype& type,
                JArray<T>& recvbuf, int recvcount, int root) const;
  template <JavaPrimitive T>
  void allGatherv(const JArray<T>& sendbuf, int sendcount,
                  const Datatype& type, JArray<T>& recvbuf,
                  std::span<const int> recvcounts,
                  std::span<const int> displs) const;
  template <JavaPrimitive T>
  void allToAllv(const JArray<T>& sendbuf, std::span<const int> sendcounts,
                 std::span<const int> sdispls, const Datatype& type,
                 JArray<T>& recvbuf, std::span<const int> recvcounts,
                 std::span<const int> rdispls) const;

  // --- One-sided communication (mpi.Win) ------------------------------------
  /// Expose `bytes` of a direct ByteBuffer as this rank's window slice
  /// (collective over the communicator). Heap buffers are rejected: RMA
  /// needs a stable native address.
  class Win winCreate(ByteBuffer& buf, std::size_t bytes) const;
  /// Collectively allocate a zero-initialised window of `bytes`.
  class Win winAllocate(std::size_t bytes) const;

  // --- Communicator management ----------------------------------------------
  Comm dup() const;
  Comm split(int color, int key) const;

  // --- Fault tolerance (the MPIX/ULFM extension surface) --------------------
  /// Error-handling policy for rank failures on this communicator
  /// (default ERRORS_ARE_FATAL); inherited by dup/split/shrink results.
  void setErrhandler(Errhandler eh) const;
  Errhandler getErrhandler() const;
  /// MPIX_Comm_revoke: interrupt every pending and future operation on
  /// this communicator, on every rank, with CommRevokedError.
  void revoke() const;
  /// MPIX_Comm_shrink: agree on the failed set and return a survivors-only
  /// communicator with dense re-ranking.
  Comm shrink() const;
  /// MPIX_Comm_agree: fault-tolerant agreement — the bitwise AND of `flag`
  /// across survivors, identical on every rank even under failures.
  int agree(int flag) const;
  /// World ranks of this communicator known to have failed (sorted).
  std::vector<int> getFailedRanks() const;

  /// The underlying native communicator (library-internal + benches).
  const minimpi::Comm& native() const { return native_; }

 private:
  friend class Env;
  friend class Win;  // one-sided paths reuse buffer_address/env_
  Comm(Env* env, minimpi::Comm native) : env_(env), native_(native) {}

  /// Native pointer of a direct buffer, via the JNI layer; validates
  /// direct-ness and capacity for `bytes`.
  std::byte* buffer_address(const ByteBuffer& buf, std::size_t bytes,
                            const char* what) const;

  Env* env_ = nullptr;
  minimpi::Comm native_;
};

}  // namespace jhpc::mv2j
