// Public value types of the MVAPICH2-J bindings: Datatype, Op, Status.
//
// MVAPICH2-J adopts the Open MPI Java bindings API (paper Section II-C):
// camelCase method names, MPI.INT-style datatype constants, no `offset`
// argument on communication primitives, direct ByteBuffers alongside Java
// arrays. The C++ mirror keeps those names so the bound API is
// recognisable; everything beneath speaks the substrate's snake_case.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "jhpc/minijvm/jtypes.hpp"
#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/op.hpp"
#include "jhpc/minimpi/types.hpp"

namespace jhpc::mv2j {

/// A datatype: one of the basic constants (MPI.BYTE ... MPI.DOUBLE) or a
/// derived type built with contiguous()/vector()/hvector()/indexed()/
/// structType().
///
/// Derived datatypes work on both binding paths. The Java-array path
/// packs the scattered elements through the buffering layer onto
/// consecutive staging-buffer locations (paper Section IV-B). The direct
/// ByteBuffer path hands the raw pointer plus the committed flat layout
/// to the substrate, which gathers the runs straight into the transport
/// slab (docs/API.md "Derived datatypes") — no user-side staging copy.
class Datatype {
 public:
  explicit Datatype(minimpi::Datatype native) : native_(std::move(native)) {}

  /// MPI_Type_contiguous: `count` consecutive elements of `base`.
  static Datatype contiguous(int count, const Datatype& base) {
    return Datatype(minimpi::Datatype::contiguous(count, base.native_));
  }
  /// MPI_Type_vector: `count` blocks of `blocklen` base elements, block
  /// starts `stride` base elements apart.
  static Datatype vector(int count, int blocklen, int stride,
                         const Datatype& base) {
    return Datatype(
        minimpi::Datatype::vector(count, blocklen, stride, base.native_));
  }
  /// MPI_Type_create_hvector: like vector(), but the stride is in bytes.
  static Datatype hvector(int count, int blocklen, std::ptrdiff_t strideBytes,
                          const Datatype& base) {
    return Datatype(minimpi::Datatype::hvector(count, blocklen, strideBytes,
                                               base.native_));
  }
  /// MPI_Type_indexed: irregular blocks at explicit displacements.
  static Datatype indexed(std::span<const int> blocklens,
                          std::span<const int> displs,
                          const Datatype& base) {
    return Datatype(
        minimpi::Datatype::indexed(blocklens, displs, base.native_));
  }
  /// MPI_Type_create_struct: field i is `blocklens[i]` elements of
  /// `fields[i]` at byte displacement `displsBytes[i]`.
  static Datatype structType(std::span<const int> blocklens,
                             std::span<const std::ptrdiff_t> displsBytes,
                             std::span<const Datatype> fields) {
    std::vector<minimpi::Datatype> natives;
    natives.reserve(fields.size());
    for (const Datatype& f : fields) natives.push_back(f.native_);
    return Datatype(
        minimpi::Datatype::struct_type(blocklens, displsBytes, natives));
  }

  /// Payload bytes per element.
  std::size_t size() const { return native_.size(); }
  /// Memory span per element (differs from size() for strided types).
  std::size_t extent() const { return native_.extent(); }
  bool isBasic() const { return native_.is_basic(); }
  /// True when every leaf is the same basic kind (reductions need this).
  bool uniformLeaf() const { return native_.uniform_leaf(); }
  /// Basic kind for basic types (reductions require these).
  minimpi::BasicKind kind() const { return native_.kind(); }
  /// The primitive type at the leaves (what the backing array must be).
  minimpi::BasicKind leafKind() const { return native_.leaf_kind(); }

  const minimpi::Datatype& native() const { return native_; }
  bool operator==(const Datatype& other) const {
    return native_ == other.native_;
  }

 private:
  minimpi::Datatype native_;
};

inline const Datatype BYTE{minimpi::Datatype::byte_type()};
inline const Datatype BOOLEAN{minimpi::Datatype::boolean_type()};
inline const Datatype CHAR{minimpi::Datatype::char_type()};
inline const Datatype SHORT{minimpi::Datatype::short_type()};
inline const Datatype INT{minimpi::Datatype::int_type()};
inline const Datatype LONG{minimpi::Datatype::long_type()};
inline const Datatype FLOAT{minimpi::Datatype::float_type()};
inline const Datatype DOUBLE{minimpi::Datatype::double_type()};

/// The Java primitive type corresponding to a Datatype constant.
template <minijvm::JavaPrimitive T>
constexpr minimpi::BasicKind kind_of() {
  if constexpr (std::is_same_v<T, minijvm::jbyte>)
    return minimpi::BasicKind::kByte;
  else if constexpr (std::is_same_v<T, minijvm::jboolean>)
    return minimpi::BasicKind::kBoolean;
  else if constexpr (std::is_same_v<T, minijvm::jchar>)
    return minimpi::BasicKind::kChar;
  else if constexpr (std::is_same_v<T, minijvm::jshort>)
    return minimpi::BasicKind::kShort;
  else if constexpr (std::is_same_v<T, minijvm::jint>)
    return minimpi::BasicKind::kInt;
  else if constexpr (std::is_same_v<T, minijvm::jlong>)
    return minimpi::BasicKind::kLong;
  else if constexpr (std::is_same_v<T, minijvm::jfloat>)
    return minimpi::BasicKind::kFloat;
  else
    return minimpi::BasicKind::kDouble;
}

/// A reduction operator constant (MPI.SUM ...).
class Op {
 public:
  constexpr explicit Op(minimpi::ReduceOp op) : op_(op) {}
  constexpr minimpi::ReduceOp native() const { return op_; }
  constexpr bool operator==(const Op&) const = default;

 private:
  minimpi::ReduceOp op_;
};

inline constexpr Op SUM{minimpi::ReduceOp::kSum};
inline constexpr Op PROD{minimpi::ReduceOp::kProd};
inline constexpr Op MIN{minimpi::ReduceOp::kMin};
inline constexpr Op MAX{minimpi::ReduceOp::kMax};
inline constexpr Op LAND{minimpi::ReduceOp::kLand};
inline constexpr Op LOR{minimpi::ReduceOp::kLor};
inline constexpr Op BAND{minimpi::ReduceOp::kBand};
inline constexpr Op BOR{minimpi::ReduceOp::kBor};
inline constexpr Op BXOR{minimpi::ReduceOp::kBxor};

/// Wildcards re-exported under their Java names.
inline constexpr int ANY_SOURCE = minimpi::kAnySource;
inline constexpr int ANY_TAG = minimpi::kAnyTag;

/// Error handlers (MPI.ERRORS_ARE_FATAL / MPI.ERRORS_RETURN), re-exported
/// from the substrate. Under ERRORS_ARE_FATAL (the default) a rank
/// failure aborts the whole job; under ERRORS_RETURN it raises
/// minimpi::RankFailedError / CommRevokedError from the affected calls,
/// which the ULFM methods below (revoke/shrink/agree) recover from.
using Errhandler = minimpi::Errhandler;
inline constexpr Errhandler ERRORS_ARE_FATAL =
    minimpi::Errhandler::kErrorsAreFatal;
inline constexpr Errhandler ERRORS_RETURN =
    minimpi::Errhandler::kErrorsReturn;

/// Receive completion info (mpi.Status).
class Status {
 public:
  Status() = default;
  explicit Status(const minimpi::Status& native) : native_(native) {}
  int getSource() const { return native_.source; }
  int getTag() const { return native_.tag; }
  /// Element count of the received message for `type` (MPI_Get_count).
  int getCount(const Datatype& type) const {
    return static_cast<int>(native_.count_bytes / type.size());
  }
  std::size_t bytes() const { return native_.count_bytes; }

 private:
  minimpi::Status native_;
};

}  // namespace jhpc::mv2j
