// Non-blocking requests of the MVAPICH2-J bindings.
//
// A bindings-level request wraps the native request plus whatever staging
// state the Java layer created for it: for array operations the pooled
// mpjbuf buffer must stay alive until completion, and irecv must copy the
// staged bytes back into the Java array after the native receive lands.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "jhpc/minimpi/request.hpp"
#include "jhpc/mv2j/types.hpp"

namespace jhpc::ompij {
class Comm;
}

namespace jhpc::mv2j {

/// Handle to an in-flight non-blocking operation (mpi.Request). The name
/// waitFor() mirrors the Java bindings (Request.waitFor()).
class Request {
 public:
  Request() = default;

  bool isActive() const { return native_.valid() || completion_ != nullptr; }

  /// Block until complete; runs the staged completion action (array
  /// copy-back, buffer release) and returns the Status.
  Status waitFor();

  /// Non-blocking completion probe; on true the completion action has run
  /// and `status`, when non-null, is filled.
  bool test(Status* status = nullptr);

  /// Wait for all (Request.waitAll).
  static void waitAll(std::span<Request> requests);

 private:
  friend class Comm;
  // The Open MPI-J baseline implements the same Java API and constructs
  // the same Request objects.
  friend class jhpc::ompij::Comm;
  struct CompletionState {
    /// Runs exactly once after the native request completes.
    std::function<void(const minimpi::Status&)> on_complete;
  };

  Request(minimpi::Request native, std::shared_ptr<CompletionState> completion)
      : native_(std::move(native)), completion_(std::move(completion)) {}

  minimpi::Request native_;
  std::shared_ptr<CompletionState> completion_;
};

}  // namespace jhpc::mv2j
