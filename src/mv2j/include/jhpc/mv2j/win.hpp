// mpi.Win of the MVAPICH2-J bindings: one-sided communication over
// direct ByteBuffers.
//
// Same Figure-4 pipeline as the two-sided ByteBuffer paths — reference
// in, one JNI crossing, GetDirectBufferAddress, native call on the raw
// pointer. The native library underneath is the substrate's
// RDMA-emulating window engine (docs/API.md "One-sided communication"):
// puts and gets move payload straight between the origin buffer and the
// exposed window memory, no mailbox bounce, which is exactly why the
// paper-era Java bindings wanted direct buffers for RMA in the first
// place. Java arrays are deliberately NOT bound here: a staged array
// would reintroduce the copy RMA exists to avoid.
//
// Epoch discipline, completion semantics and the error taxonomy are the
// substrate's (jhpc/minimpi/win.hpp); these bindings add only the JNI
// crossing accounting and ByteBuffer capacity validation.
#pragma once

#include <cstddef>
#include <span>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minimpi/win.hpp"
#include "jhpc/mv2j/comm.hpp"
#include "jhpc/mv2j/types.hpp"

namespace jhpc::mv2j {

/// Passive-target lock modes, re-exported under their Java names.
using LockType = minimpi::LockType;
inline constexpr LockType LOCK_EXCLUSIVE = minimpi::LockType::kExclusive;
inline constexpr LockType LOCK_SHARED = minimpi::LockType::kShared;

/// mpi.Win: a window of directly-accessible memory on every rank of the
/// communicator it was created from. Obtain one with Comm::winCreate
/// (expose an existing direct ByteBuffer) or Comm::winAllocate (the
/// library allocates zeroed memory).
class Win {
 public:
  Win() = default;

  bool valid() const { return native_.valid(); }
  int getRank() const { return native_.rank(); }
  int getSize() const { return native_.size(); }
  /// Bytes exposed by `targetRank` (windows may be heterogeneous).
  std::size_t getBytes(int targetRank) const {
    return native_.bytes(targetRank);
  }

  // --- One-sided data movement (direct ByteBuffer origins) -----------------
  /// Put `count` elements of `type` from the origin buffer (index 0)
  /// into the target window at byte offset `targetOffset`.
  void put(const ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset) const;
  /// Same, scattering into the target through `targetType`'s layout
  /// (count*type payload bytes must be whole targetType elements).
  void put(const ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset,
           const Datatype& targetType) const;
  void get(ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset) const;
  void get(ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset,
           const Datatype& targetType) const;
  /// Element-wise `target op= origin`, applied atomically per element at
  /// the target. `type` must have a uniform basic leaf.
  void accumulate(const ByteBuffer& origin, int count, const Datatype& type,
                  const Op& op, int targetRank,
                  std::size_t targetOffset) const;
  /// Atomic read-modify-write of ONE `type` element: `result` receives
  /// the pre-op target value (valid on return). `type` must be basic.
  void fetchOp(const ByteBuffer& value, ByteBuffer& result,
               const Datatype& type, const Op& op, int targetRank,
               std::size_t targetOffset) const;

  // --- Synchronization ------------------------------------------------------
  void fence() const;
  void post(std::span<const int> group) const;
  void start(std::span<const int> group) const;
  void complete() const;
  /// Closes the exposure epoch opened by post() (MPI_Win_wait; named for
  /// the Java bindings' Request::waitFor idiom).
  void waitFor() const;
  void lock(LockType type, int targetRank) const;
  void unlock(int targetRank) const;
  void lockAll() const;
  void unlockAll() const;

  /// Collective teardown; the handle becomes invalid.
  void free();

  const minimpi::Win& native() const { return native_; }

 private:
  friend class Comm;
  Win(Comm comm, minimpi::Win native)
      : comm_(std::move(comm)), native_(std::move(native)) {}

  /// Origin pointer for `count` elements of `type`, through the JNI
  /// layer (crossing accounted, direct-ness and capacity validated).
  std::byte* origin_address(const ByteBuffer& buf, int count,
                            const Datatype& type, const char* what) const;

  Comm comm_;
  minimpi::Win native_;
};

}  // namespace jhpc::mv2j
