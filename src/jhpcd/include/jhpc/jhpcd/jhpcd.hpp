// jhpcd: a persistent in-process scheduler admitting many concurrent
// MPI jobs onto one shared fleet.
//
// The paper's deployment model is one JVM job per mpirun; a service
// deployment instead keeps the native library resident and runs a
// stream of jobs against it. jhpcd reproduces the resource-management
// side of that mode on the simulation stack:
//
//   - Admission control: a bounded queue per fairness class. A full
//     queue either sheds the lowest-priority queued job (when the new
//     submission outranks it) or rejects the submission with a typed
//     AdmissionRejectedError carrying an exponential-backoff
//     retry-after hint.
//   - Per-job quotas: ranks (checked at submit), wall-clock budget,
//     slab-bytes footprint and outstanding-message depth (enforced by a
//     watchdog thread that fail-stops the offending job). A tripped
//     quota surfaces as QuotaExceededError from JobHandle::await(), in
//     that job only.
//   - Fleet sharing: every tenant Universe is built on one shared slab
//     depot (jhpc/minimpi/slab_depot.hpp), so completed jobs donate
//     warm slabs to the next tenant and the depot ceiling bounds fleet
//     memory. Completed Universes are parked in a pool keyed by their
//     configuration and reused, so steady-state churn allocates
//     nothing.
//   - Tenant isolation: one Universe per job. Kills, revokes and
//     timeouts in one tenant surface their typed ULFM errors through
//     that tenant's handle only; co-resident jobs never observe them.
//   - Fairness: weighted round-robin between the latency class and the
//     bandwidth class (latency_weight latency jobs per bandwidth job
//     when both queues are non-empty), FIFO within a class. Priority
//     governs shed order, not dispatch order.
//
// Observability: the manager owns a service-wide pvar registry
// (jhpcd.* counters, queue-wait histograms per class, job.<id>.*
// per-job namespaces while capacity lasts) and a flight recorder whose
// admit/reject/quota-trip/drain events are dumped alongside the
// tenant's protocol events when a job dies on TransportTimeoutError.
// See docs/SERVICE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "jhpc/minimpi/comm.hpp"
#include "jhpc/minimpi/slab_depot.hpp"
#include "jhpc/minimpi/universe.hpp"
#include "jhpc/obs/pvar.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::jhpcd {

/// The scheduler refused to queue a job (queue full, shed under load,
/// or service shutting down). Carries a retry-after hint that grows
/// exponentially with consecutive rejections, so well-behaved clients
/// back off instead of hammering a saturated service.
class AdmissionRejectedError : public Error {
 public:
  AdmissionRejectedError(const std::string& what, std::int64_t retry_after_ns)
      : Error(ErrorCode::kAdmissionRejected, what),
        retry_after_ns_(retry_after_ns) {}

  /// Suggested wait before resubmitting, wall-clock ns (0 = never, the
  /// service is shutting down).
  std::int64_t retry_after_ns() const { return retry_after_ns_; }

 private:
  std::int64_t retry_after_ns_;
};

/// A per-job quota tripped: at submit (ranks) or while running (wall
/// budget, slab bytes, outstanding messages — the watchdog fail-stops
/// the job and await() reports this instead of the kill's mechanics).
class QuotaExceededError : public Error {
 public:
  explicit QuotaExceededError(const std::string& what)
      : Error(ErrorCode::kQuotaExceeded, what) {}
};

/// Fairness class of a job. Latency-sensitive jobs (pingpongs, small
/// collectives) dispatch ahead of bandwidth hogs at the configured
/// weight so a stream of alltoalls cannot starve them.
enum class JobClass : std::uint8_t {
  kLatency,
  kBandwidth,
};

/// Per-job resource quotas. 0 means "unlimited" for every field. The
/// ranks quota rejects at submit(); the rest are enforced while the job
/// runs, by a watchdog that polls the job's Universe and fail-stops it
/// on a violation.
struct JobQuota {
  /// Maximum world size; checked against the spec at submit.
  int max_ranks = 0;
  /// Wall-clock budget for the run itself (queue wait excluded), ns.
  std::int64_t max_wall_ns = 0;
  /// Ceiling on the job's slab free-list footprint
  /// (SlabStats::retained_bytes — the per-job view; the fleet-wide
  /// ceiling is ServiceConfig::depot_max_bytes).
  std::uint64_t max_slab_bytes = 0;
  /// Ceiling on the unexpected-queue depth high-water mark (the
  /// mpi.unexpected_hwm pvar, summed over ranks). Setting this arms
  /// quiet observability on the job's Universe so the counter exists.
  std::int64_t max_outstanding_msgs = 0;
};

/// One job submission: a name for diagnostics, the mpirun line, the
/// fairness class, a shed priority and the quotas.
struct JobSpec {
  std::string name;
  /// The job's Universe configuration. The manager overrides
  /// shared_depot (fleet depot) and, when the outstanding-message quota
  /// is set, arms quiet pvars; everything else is the tenant's.
  minimpi::UniverseConfig config;
  JobClass job_class = JobClass::kLatency;
  /// Shed priority: under queue pressure the LOWEST-priority queued job
  /// is rejected first, and only in favor of a strictly higher-priority
  /// submission. Does not affect dispatch order.
  int priority = 0;
  JobQuota quota;
  /// The SPMD body, as for Universe::run.
  std::function<void(minimpi::Comm&)> rank_main;
};

/// Terminal state of a job.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,  ///< rank_main returned everywhere
  kFailed,     ///< a typed error (tenant fault, quota trip) — see error
  kShed,       ///< evicted from the queue by a higher-priority submission
};

/// What await() returns. `error` is null exactly when state ==
/// kCompleted; otherwise it holds the job's typed error (QuotaExceeded,
/// RankFailed, TransportTimeout, AdmissionRejected for shed jobs, ...)
/// and `code`/`error_what` summarize it without rethrowing.
struct JobResult {
  std::uint64_t id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  ErrorCode code = ErrorCode::kUnknown;
  std::string error_what;
  std::exception_ptr error;
  std::int64_t queue_wait_ns = 0;  ///< submit → dispatch, wall ns
  std::int64_t run_ns = 0;         ///< dispatch → completion, wall ns
};

namespace detail {
struct Job;
}  // namespace detail

/// Handle to a submitted job. Copyable; the last copy going away does
/// not cancel the job.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return job_ != nullptr; }
  std::uint64_t id() const;
  const std::string& name() const;

  /// True once the job reached a terminal state.
  bool done() const;

  /// Block until the job reaches a terminal state; never throws — the
  /// job's own error, if any, rides in the result.
  JobResult await() const;

 private:
  friend class JobManager;
  explicit JobHandle(std::shared_ptr<detail::Job> job)
      : job_(std::move(job)) {}
  std::shared_ptr<detail::Job> job_;
};

/// Service-wide configuration. Every knob has a JHPC_SVC_* environment
/// override (see from_env and docs/SERVICE.md).
struct ServiceConfig {
  /// Concurrently running jobs (worker threads). Env: JHPC_SVC_WORKERS.
  int workers = 4;
  /// Bounded admission queue capacity, both classes combined. Env:
  /// JHPC_SVC_QUEUE_CAP.
  std::size_t queue_capacity = 64;
  /// Fleet-wide slab depot ceiling, bytes; slabs released past it are
  /// freed instead of retained. Env: JHPC_SVC_DEPOT_MAX_BYTES.
  std::size_t depot_max_bytes = 256u << 20;
  /// Idle Universes parked for reuse. Env: JHPC_SVC_POOL_CAP.
  std::size_t pool_capacity = 8;
  /// Latency-class jobs dispatched per bandwidth-class job when both
  /// queues are non-empty. Env: JHPC_SVC_LATENCY_WEIGHT.
  int latency_weight = 3;
  /// Service-wide ceiling on any job's world size (a tighter
  /// JobQuota::max_ranks wins). Env: JHPC_SVC_MAX_RANKS.
  int max_ranks_per_job = 64;
  /// Register job.<id>.* per-job pvars until the registry's capacity is
  /// reached (then stop silently — churn benches submit tens of
  /// thousands of jobs and must not exhaust a fixed registry).
  bool per_job_pvars = true;
  /// Service pvar-registry capacity.
  std::size_t pvar_capacity = 512;
  /// Service flight-recorder ring capacity (admit/reject/trip/drain
  /// events); 0 disables.
  std::size_t flight_capacity = 256;

  /// Defaults overlaid with the JHPC_SVC_* knobs, validated like every
  /// other env knob (garbage or out-of-range throws
  /// InvalidArgumentError naming the knob).
  static ServiceConfig from_env();
};

/// Point-in-time service counters, for tests and monitoring without
/// going through the pvar registry.
struct ServiceStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;     ///< refused submissions (includes shed)
  std::uint64_t shed = 0;         ///< queued jobs evicted under pressure
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;       ///< terminal errors, quota trips included
  std::uint64_t quota_trips = 0;
  std::size_t queued = 0;         ///< currently waiting, both classes
  std::size_t active = 0;         ///< currently running
  std::uint64_t universes_created = 0;
  std::uint64_t universes_reused = 0;
  std::size_t pool_idle = 0;      ///< Universes parked for reuse
  minimpi::SlabDepotStats depot;  ///< fleet depot view
};

/// The scheduler. Construct once, submit many jobs, await their
/// handles; the destructor drains the queue and joins the fleet.
class JobManager {
 public:
  explicit JobManager(ServiceConfig config = ServiceConfig{});
  ~JobManager();
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Queue a job. Throws InvalidArgumentError on a malformed spec,
  /// QuotaExceededError when the spec's world size exceeds its ranks
  /// quota, and AdmissionRejectedError when the queue is full (with a
  /// retry-after hint) or the service is shutting down.
  JobHandle submit(JobSpec spec);

  /// Block until the queue is empty and no job is running. Does not
  /// stop the workers; more jobs may be submitted afterwards.
  void drain();

  /// Drain, then stop and join the fleet. Idempotent; implied by the
  /// destructor. Submissions after shutdown are rejected.
  void shutdown();

  ServiceStats stats() const;
  const ServiceConfig& config() const { return config_; }

  /// The fleet's shared slab depot (every tenant Universe is built on
  /// it).
  minimpi::SlabDepotPtr depot() const { return depot_; }

  /// The service pvar registry: jhpcd.* plus job.<id>.* namespaces.
  const obs::PvarRegistry& pvars() const;

  /// Human-readable dump of the service flight ring (admit / reject /
  /// quota-trip / drain events); empty when nothing was recorded. Also
  /// written to stderr automatically when a tenant dies on
  /// TransportTimeoutError, alongside that tenant's protocol dump.
  std::string flight_report() const;

 private:
  struct Impl;

  void worker_loop();
  void run_job(const std::shared_ptr<detail::Job>& job);
  std::unique_ptr<minimpi::Universe> acquire_universe(
      const std::string& sig, const minimpi::UniverseConfig& cfg);
  void release_universe(const std::string& sig,
                        std::unique_ptr<minimpi::Universe> uni);
  void maybe_register_job_pvars(const detail::Job& job,
                                std::int64_t queue_wait_ns);
  void watchdog_loop();

  ServiceConfig config_;
  minimpi::SlabDepotPtr depot_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace jhpc::jhpcd
