#include "jhpc/jhpcd/jhpcd.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "jhpc/obs/recorder.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/env.hpp"

namespace jhpc::jhpcd {

namespace detail {

/// One job's lifetime record, shared between the handle, the queues,
/// the worker running it and the watchdog.
struct Job {
  std::uint64_t id = 0;
  JobSpec spec;
  std::int64_t submit_ns = 0;

  // Quota enforcement: the watchdog sets the flag (under the active-set
  // mutex) before fail-stopping the job; the worker reads it after
  // run() returns. The flag must be honored even when run() returned
  // cleanly — a world_size==1 job absorbs its own kill.
  bool quota_trip = false;
  std::string quota_what;

  // Terminal state, guarded by mu.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  JobResult result;

  void finish(JobState state, std::exception_ptr error,
              std::int64_t queue_wait_ns, std::int64_t run_ns) {
    std::lock_guard<std::mutex> lk(mu);
    result.id = id;
    result.name = spec.name;
    result.state = state;
    result.error = error;
    result.queue_wait_ns = queue_wait_ns;
    result.run_ns = run_ns;
    if (error != nullptr) {
      try {
        std::rethrow_exception(error);
      } catch (const Error& e) {
        result.code = e.code();
        result.error_what = e.what();
      } catch (const std::exception& e) {
        result.code = ErrorCode::kUnknown;
        result.error_what = e.what();
      } catch (...) {
        result.code = ErrorCode::kUnknown;
        result.error_what = "unknown error";
      }
    }
    done = true;
    cv.notify_all();
  }
};

}  // namespace detail

std::uint64_t JobHandle::id() const { return job_ != nullptr ? job_->id : 0; }

const std::string& JobHandle::name() const {
  static const std::string kEmpty;
  return job_ != nullptr ? job_->spec.name : kEmpty;
}

bool JobHandle::done() const {
  if (job_ == nullptr) return true;
  std::lock_guard<std::mutex> lk(job_->mu);
  return job_->done;
}

JobResult JobHandle::await() const {
  JHPC_REQUIRE(job_ != nullptr, "await on an invalid JobHandle");
  std::unique_lock<std::mutex> lk(job_->mu);
  job_->cv.wait(lk, [this] { return job_->done; });
  return job_->result;
}

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig c;
  c.workers = static_cast<int>(env_int64_range(
      "JHPC_SVC_WORKERS", c.workers, /*min_value=*/1, /*max_value=*/256));
  c.queue_capacity = static_cast<std::size_t>(env_int64_range(
      "JHPC_SVC_QUEUE_CAP", static_cast<std::int64_t>(c.queue_capacity),
      /*min_value=*/1));
  c.depot_max_bytes = static_cast<std::size_t>(env_int64_range(
      "JHPC_SVC_DEPOT_MAX_BYTES",
      static_cast<std::int64_t>(c.depot_max_bytes), /*min_value=*/1));
  c.pool_capacity = static_cast<std::size_t>(env_int64_range(
      "JHPC_SVC_POOL_CAP", static_cast<std::int64_t>(c.pool_capacity),
      /*min_value=*/0));
  c.latency_weight = static_cast<int>(env_int64_range(
      "JHPC_SVC_LATENCY_WEIGHT", c.latency_weight, /*min_value=*/1,
      /*max_value=*/64));
  c.max_ranks_per_job = static_cast<int>(env_int64_range(
      "JHPC_SVC_MAX_RANKS", c.max_ranks_per_job, /*min_value=*/1));
  return c;
}

namespace {

/// Exponential-backoff retry hint: 1 ms doubling per consecutive
/// rejection, capped at 1 s.
std::int64_t backoff_ns(int consecutive_rejects) {
  const int shift = std::min(consecutive_rejects > 0 ? consecutive_rejects - 1
                                                     : 0,
                             10);
  return std::min<std::int64_t>(std::int64_t{1'000'000} << shift,
                                std::int64_t{1'000'000'000});
}

/// Pool key: every UniverseConfig field that changes a Universe's
/// behavior. Jobs with fault injection, scheduled kills or file-output
/// observability are never pooled (see poolable()).
std::string config_signature(const minimpi::UniverseConfig& c) {
  std::string s;
  s.reserve(128);
  auto add = [&s](std::int64_t v) {
    s += std::to_string(v);
    s += '|';
  };
  add(c.world_size);
  add(static_cast<std::int64_t>(c.suite));
  add(static_cast<std::int64_t>(c.eager_limit));
  add(c.intra_send_overhead_ns);
  add(c.hier_flag_ns);
  add(c.deterministic_clock ? 1 : 0);
  add(static_cast<std::int64_t>(c.bcast_binomial_max));
  add(static_cast<std::int64_t>(c.allreduce_rd_max));
  add(static_cast<std::int64_t>(c.allgather_rd_max));
  add(c.obs.pvars ? 1 : 0);
  add(c.obs.comm_matrix ? 1 : 0);
  add(c.obs.flight_recorder ? 1 : 0);
  add(c.obs.quiet ? 1 : 0);
  const netsim::FabricConfig& f = c.fabric;
  add(f.ranks_per_node);
  add(static_cast<std::int64_t>(f.placement));
  add(f.inter_latency_ns);
  add(static_cast<std::int64_t>(f.inter_bandwidth_mbps * 1000.0));
  add(f.intra_latency_ns);
  for (const int node : f.node_map) add(node);
  add(f.faults.heartbeat_ns);
  add(f.faults.rto_ns);
  add(f.faults.rto_max_ns);
  add(f.faults.delivery_timeout_ns);
  return s;
}

/// A Universe is reusable only when nothing job-specific is baked into
/// it: no fault schedule (a reused kill plan would re-fire in the next
/// tenant) and no file-output observability (traces/CSVs name paths).
bool poolable(const minimpi::UniverseConfig& c) {
  return !c.fabric.faults.enabled() && !c.fabric.faults.kills_enabled() &&
         c.obs.trace_path.empty() && c.obs.comm_matrix_csv.empty() &&
         c.obs.pvars_json_path.empty() && c.obs.flight_dump_path.empty();
}

}  // namespace

struct JobManager::Impl {
  explicit Impl(const ServiceConfig& cfg)
      : pvars(/*ranks=*/1, cfg.pvar_capacity),
        flight(cfg.flight_capacity, /*ranks=*/1) {}

  // --- Observability ----------------------------------------------------
  obs::PvarRegistry pvars;
  obs::FlightRecorder flight;
  std::int64_t epoch_ns = 0;  ///< manager start; flight timestamps are
                              ///< relative to it
  obs::PvarId pv_admitted, pv_rejected, pv_shed, pv_completed, pv_failed;
  obs::PvarId pv_quota_trips, pv_queue_depth, pv_active;
  obs::PvarId pv_wait_latency, pv_wait_bandwidth;
  obs::PvarId pv_uni_created, pv_uni_reused, pv_depot_hwm;

  // --- Admission / dispatch (guarded by mu) -----------------------------
  mutable std::mutex mu;
  std::condition_variable work_cv;  ///< workers wait for jobs/shutdown
  std::condition_variable idle_cv;  ///< drain() waits for quiescence
  std::deque<std::shared_ptr<detail::Job>> latency_q;
  std::deque<std::shared_ptr<detail::Job>> bandwidth_q;
  int latency_served = 0;  ///< WRR credit since the last bandwidth pick
  std::uint64_t next_id = 1;
  int consec_rejects = 0;
  bool stopping = false;
  std::size_t active = 0;
  std::uint64_t admitted = 0, rejected = 0, shed = 0;
  std::uint64_t completed = 0, failed = 0, quota_trips = 0;
  std::uint64_t universes_created = 0, universes_reused = 0;

  // --- Universe pool (guarded by mu) ------------------------------------
  struct PooledUniverse {
    std::string sig;
    std::unique_ptr<minimpi::Universe> uni;
  };
  std::vector<PooledUniverse> pool;

  // --- Active set (guarded by active_mu; the watchdog's view) -----------
  // kill_rank() and entry erasure both run under active_mu, so a
  // Universe is never killed after its worker released it.
  struct ActiveEntry {
    std::shared_ptr<detail::Job> job;
    minimpi::Universe* uni = nullptr;
    std::int64_t start_ns = 0;
  };
  std::mutex active_mu;
  std::vector<ActiveEntry> active_jobs;

  // --- Threads ----------------------------------------------------------
  std::vector<std::thread> workers;
  std::thread watchdog;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_stop = false;

  std::int64_t since_epoch() const { return now_ns() - epoch_ns; }

  void record_flight(obs::FlightKind kind, const detail::Job& job) {
    if (!flight.on()) return;
    obs::FlightEvent ev;
    ev.vtime_ns = since_epoch();
    ev.arg = static_cast<std::int64_t>(job.id);
    ev.peer = job.spec.priority;
    ev.tag = static_cast<std::int32_t>(job.spec.job_class);
    ev.kind = kind;
    flight.record(0, ev);
  }
};

JobManager::JobManager(ServiceConfig config)
    : config_(config),
      depot_(minimpi::make_slab_depot(config.depot_max_bytes)),
      impl_(std::make_unique<Impl>(config_)) {
  JHPC_REQUIRE(config_.workers >= 1, "ServiceConfig.workers must be >= 1");
  JHPC_REQUIRE(config_.queue_capacity >= 1,
               "ServiceConfig.queue_capacity must be >= 1");
  JHPC_REQUIRE(config_.latency_weight >= 1,
               "ServiceConfig.latency_weight must be >= 1");
  JHPC_REQUIRE(config_.max_ranks_per_job >= 1,
               "ServiceConfig.max_ranks_per_job must be >= 1");
  impl_->epoch_ns = now_ns();

  obs::PvarRegistry& reg = impl_->pvars;
  using obs::PvarClass;
  using obs::PvarUnit;
  impl_->pv_admitted = reg.register_pvar(
      "jhpcd.jobs.admitted", PvarClass::kCounter, "jobs accepted into the queue");
  impl_->pv_rejected = reg.register_pvar(
      "jhpcd.jobs.rejected", PvarClass::kCounter,
      "submissions refused (queue full, shed, shutdown)");
  impl_->pv_shed = reg.register_pvar(
      "jhpcd.jobs.shed", PvarClass::kCounter,
      "queued jobs evicted for higher-priority submissions");
  impl_->pv_completed = reg.register_pvar(
      "jhpcd.jobs.completed", PvarClass::kCounter, "jobs finished cleanly");
  impl_->pv_failed = reg.register_pvar(
      "jhpcd.jobs.failed", PvarClass::kCounter,
      "jobs finished with a typed error (quota trips included)");
  impl_->pv_quota_trips = reg.register_pvar(
      "jhpcd.jobs.quota_trips", PvarClass::kCounter,
      "running jobs fail-stopped by the quota watchdog");
  impl_->pv_queue_depth = reg.register_pvar(
      "jhpcd.queue.depth_hwm", PvarClass::kLevel,
      "admission-queue depth high-water mark");
  impl_->pv_active = reg.register_pvar(
      "jhpcd.active_hwm", PvarClass::kLevel,
      "concurrently running jobs high-water mark");
  impl_->pv_wait_latency = reg.register_pvar(
      "jhpcd.queue.wait.latency", PvarClass::kHistogram,
      "queue wait of latency-class jobs", PvarUnit::kNanoseconds);
  impl_->pv_wait_bandwidth = reg.register_pvar(
      "jhpcd.queue.wait.bandwidth", PvarClass::kHistogram,
      "queue wait of bandwidth-class jobs", PvarUnit::kNanoseconds);
  impl_->pv_uni_created = reg.register_pvar(
      "jhpcd.universes.created", PvarClass::kCounter,
      "tenant Universes constructed");
  impl_->pv_uni_reused = reg.register_pvar(
      "jhpcd.universes.reused", PvarClass::kCounter,
      "tenant Universes served from the idle pool");
  impl_->pv_depot_hwm = reg.register_pvar(
      "jhpcd.depot.hwm_bytes", PvarClass::kLevel,
      "shared slab-depot retained-bytes high-water mark", PvarUnit::kBytes);

  for (int w = 0; w < config_.workers; ++w) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
  impl_->watchdog = std::thread([this] { watchdog_loop(); });
}

JobManager::~JobManager() { shutdown(); }

const obs::PvarRegistry& JobManager::pvars() const { return impl_->pvars; }

std::string JobManager::flight_report() const {
  return impl_->flight.report();
}

JobHandle JobManager::submit(JobSpec spec) {
  JHPC_REQUIRE(static_cast<bool>(spec.rank_main),
               "JobSpec.rank_main must be callable");
  JHPC_REQUIRE(spec.config.world_size >= 1,
               "JobSpec.config.world_size must be >= 1");

  int rank_cap = config_.max_ranks_per_job;
  if (spec.quota.max_ranks > 0) rank_cap = std::min(rank_cap, spec.quota.max_ranks);
  if (spec.config.world_size > rank_cap) {
    throw QuotaExceededError(
        "job '" + spec.name + "' wants " +
        std::to_string(spec.config.world_size) +
        " ranks; the quota allows " + std::to_string(rank_cap));
  }

  auto job = std::make_shared<detail::Job>();
  job->spec = std::move(spec);

  std::shared_ptr<detail::Job> victim;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (impl_->stopping) {
      ++impl_->rejected;
      impl_->pvars.add(impl_->pv_rejected, 0, 1);
      throw AdmissionRejectedError("jhpcd is shutting down",
                                   /*retry_after_ns=*/0);
    }
    const std::size_t depth =
        impl_->latency_q.size() + impl_->bandwidth_q.size();
    if (depth >= config_.queue_capacity) {
      // Shed-load: evict the lowest-priority queued job, but only in
      // favor of a strictly higher-priority submission (equal priority
      // keeps FIFO admission honest). Ties go to the youngest.
      std::deque<std::shared_ptr<detail::Job>>* victim_q = nullptr;
      std::size_t victim_at = 0;
      for (auto* q : {&impl_->latency_q, &impl_->bandwidth_q}) {
        for (std::size_t i = 0; i < q->size(); ++i) {
          const auto& cand = (*q)[i];
          if (victim == nullptr ||
              cand->spec.priority <= victim->spec.priority) {
            victim = cand;
            victim_q = q;
            victim_at = i;
          }
        }
      }
      if (victim != nullptr &&
          victim->spec.priority < job->spec.priority) {
        victim_q->erase(victim_q->begin() +
                        static_cast<std::ptrdiff_t>(victim_at));
        ++impl_->shed;
        ++impl_->rejected;
        impl_->pvars.add(impl_->pv_shed, 0, 1);
        impl_->pvars.add(impl_->pv_rejected, 0, 1);
        impl_->record_flight(obs::FlightKind::kJobReject, *victim);
      } else {
        victim = nullptr;
        ++impl_->consec_rejects;
        ++impl_->rejected;
        impl_->pvars.add(impl_->pv_rejected, 0, 1);
        job->id = impl_->next_id++;
        impl_->record_flight(obs::FlightKind::kJobReject, *job);
        const std::int64_t retry = backoff_ns(impl_->consec_rejects);
        throw AdmissionRejectedError(
            "jhpcd queue full (" + std::to_string(depth) + "/" +
                std::to_string(config_.queue_capacity) +
                "); retry after " + std::to_string(retry) + " ns",
            retry);
      }
    }
    impl_->consec_rejects = 0;
    job->id = impl_->next_id++;
    job->submit_ns = now_ns();
    auto& q = job->spec.job_class == JobClass::kLatency ? impl_->latency_q
                                                        : impl_->bandwidth_q;
    q.push_back(job);
    ++impl_->admitted;
    impl_->pvars.add(impl_->pv_admitted, 0, 1);
    impl_->pvars.raise(
        impl_->pv_queue_depth, 0,
        static_cast<std::int64_t>(impl_->latency_q.size() +
                                  impl_->bandwidth_q.size()));
    impl_->record_flight(obs::FlightKind::kJobAdmit, *job);
  }
  impl_->work_cv.notify_one();
  if (victim != nullptr) {
    const std::int64_t waited = now_ns() - victim->submit_ns;
    victim->finish(
        JobState::kShed,
        std::make_exception_ptr(AdmissionRejectedError(
            "job '" + victim->spec.name +
                "' shed from the queue for a higher-priority submission",
            backoff_ns(1))),
        waited, /*run_ns=*/0);
  }
  return JobHandle(job);
}

void JobManager::drain() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->idle_cv.wait(lk, [this] {
    return impl_->latency_q.empty() && impl_->bandwidth_q.empty() &&
           impl_->active == 0;
  });
}

void JobManager::shutdown() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (impl_->stopping) {
      // Idempotent: a second shutdown (the destructor after an explicit
      // call) finds the fleet already joined.
      if (impl_->workers.empty()) return;
    }
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) {
    if (t.joinable()) t.join();
  }
  impl_->workers.clear();
  {
    std::lock_guard<std::mutex> lk(impl_->wd_mu);
    impl_->wd_stop = true;
  }
  impl_->wd_cv.notify_all();
  if (impl_->watchdog.joinable()) impl_->watchdog.join();
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->pool.clear();
}

ServiceStats JobManager::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    s.admitted = impl_->admitted;
    s.rejected = impl_->rejected;
    s.shed = impl_->shed;
    s.completed = impl_->completed;
    s.failed = impl_->failed;
    s.quota_trips = impl_->quota_trips;
    s.queued = impl_->latency_q.size() + impl_->bandwidth_q.size();
    s.active = impl_->active;
    s.universes_created = impl_->universes_created;
    s.universes_reused = impl_->universes_reused;
    s.pool_idle = impl_->pool.size();
  }
  s.depot = minimpi::slab_depot_stats(depot_);
  return s;
}

void JobManager::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::Job> job;
    {
      std::unique_lock<std::mutex> lk(impl_->mu);
      impl_->work_cv.wait(lk, [this] {
        return impl_->stopping || !impl_->latency_q.empty() ||
               !impl_->bandwidth_q.empty();
      });
      if (impl_->latency_q.empty() && impl_->bandwidth_q.empty()) {
        if (impl_->stopping) return;
        continue;
      }
      // Weighted round-robin between classes, FIFO within one: up to
      // latency_weight latency jobs per bandwidth job when both queues
      // are non-empty, so bandwidth hogs neither starve nor dominate.
      const bool pick_bandwidth =
          impl_->latency_q.empty() ||
          (!impl_->bandwidth_q.empty() &&
           impl_->latency_served >= config_.latency_weight);
      if (pick_bandwidth) {
        job = impl_->bandwidth_q.front();
        impl_->bandwidth_q.pop_front();
        impl_->latency_served = 0;
      } else {
        job = impl_->latency_q.front();
        impl_->latency_q.pop_front();
        ++impl_->latency_served;
      }
      ++impl_->active;
      impl_->pvars.raise(impl_->pv_active, 0,
                         static_cast<std::int64_t>(impl_->active));
    }
    // run_job() decrements active itself, in the same critical section
    // that completes the handle — so an await() that returned implies
    // stats().active no longer counts this job, and a drain() that
    // returned implies every finished job's handle is already done.
    run_job(job);
  }
}

void JobManager::run_job(const std::shared_ptr<detail::Job>& job) {
  const std::int64_t start_ns = now_ns();
  const std::int64_t queue_wait_ns = start_ns - job->submit_ns;
  impl_->pvars.record(job->spec.job_class == JobClass::kLatency
                          ? impl_->pv_wait_latency
                          : impl_->pv_wait_bandwidth,
                      0, queue_wait_ns);
  maybe_register_job_pvars(*job, queue_wait_ns);

  // The tenant's configuration, on the fleet's shared depot. An
  // outstanding-message quota needs the transport counters, which only
  // exist with observability on — arm it quietly.
  minimpi::UniverseConfig cfg = job->spec.config;
  cfg.shared_depot = depot_;
  if (job->spec.quota.max_outstanding_msgs > 0 && !cfg.obs.enabled()) {
    cfg.obs.pvars = true;
    cfg.obs.quiet = true;
  }
  const bool reusable = poolable(cfg);
  const std::string sig = reusable ? config_signature(cfg) : std::string();
  std::unique_ptr<minimpi::Universe> uni = acquire_universe(sig, cfg);

  {
    std::lock_guard<std::mutex> lk(impl_->active_mu);
    impl_->active_jobs.push_back({job, uni.get(), start_ns});
  }

  std::exception_ptr error;
  try {
    uni->run(job->spec.rank_main);
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lk(impl_->active_mu);
    auto& v = impl_->active_jobs;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i].job == job) {
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    // The quota flag is written under active_mu; read it there too. It
    // wins over whatever the kill mechanically surfaced (RankFailed /
    // Abort / nothing at all for a single-rank job).
    if (job->quota_trip) {
      error = std::make_exception_ptr(QuotaExceededError(job->quota_what));
    }
  }

  const std::int64_t end_ns = now_ns();
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (error == nullptr) {
      ++impl_->completed;
      impl_->pvars.add(impl_->pv_completed, 0, 1);
    } else {
      ++impl_->failed;
      impl_->pvars.add(impl_->pv_failed, 0, 1);
    }
    impl_->record_flight(obs::FlightKind::kJobDrain, *job);
    impl_->pvars.raise(
        impl_->pv_depot_hwm, 0,
        static_cast<std::int64_t>(minimpi::slab_depot_stats(depot_).hwm_bytes));
  }

  // A transport-timeout death already dumped the tenant's protocol
  // flight rings (Universe::run); add the service's admit/reject/drain
  // view so the post-mortem shows what the fleet was doing around it.
  if (error != nullptr) {
    try {
      std::rethrow_exception(error);
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kTransportTimeout) {
        const std::string report = impl_->flight.report();
        if (!report.empty()) {
          std::fprintf(stderr,
                       "[jhpcd] job %llu '%s' died on a transport timeout; "
                       "service flight ring:\n",
                       static_cast<unsigned long long>(job->id),
                       job->spec.name.c_str());
          std::fputs(report.c_str(), stderr);
        }
      }
    } catch (...) {
    }
  }

  if (reusable) release_universe(sig, std::move(uni));
  uni.reset();

  // Retire the job and complete its handle atomically with respect to
  // stats()/drain() observers (mu orders before the handle's own mu;
  // nothing ever takes them in the reverse order).
  std::lock_guard<std::mutex> lk(impl_->mu);
  --impl_->active;
  job->finish(error == nullptr ? JobState::kCompleted : JobState::kFailed,
              error, queue_wait_ns, end_ns - start_ns);
  if (impl_->active == 0 && impl_->latency_q.empty() &&
      impl_->bandwidth_q.empty()) {
    impl_->idle_cv.notify_all();
  }
}

std::unique_ptr<minimpi::Universe> JobManager::acquire_universe(
    const std::string& sig, const minimpi::UniverseConfig& cfg) {
  if (!sig.empty()) {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (std::size_t i = 0; i < impl_->pool.size(); ++i) {
      if (impl_->pool[i].sig == sig) {
        auto uni = std::move(impl_->pool[i].uni);
        impl_->pool.erase(impl_->pool.begin() +
                          static_cast<std::ptrdiff_t>(i));
        ++impl_->universes_reused;
        impl_->pvars.add(impl_->pv_uni_reused, 0, 1);
        return uni;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    ++impl_->universes_created;
    impl_->pvars.add(impl_->pv_uni_created, 0, 1);
  }
  return std::make_unique<minimpi::Universe>(cfg);
}

void JobManager::release_universe(const std::string& sig,
                                  std::unique_ptr<minimpi::Universe> uni) {
  if (sig.empty() || uni == nullptr) return;
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->stopping || impl_->pool.size() >= config_.pool_capacity) return;
  impl_->pool.push_back({sig, std::move(uni)});
}

void JobManager::maybe_register_job_pvars(const detail::Job& job,
                                          std::int64_t queue_wait_ns) {
  if (!config_.per_job_pvars) return;
  // Capacity-guarded: the registry is fixed-size and a churn bench
  // submits tens of thousands of jobs. Stop registering when the next
  // namespace would not fit; the jhpcd.* aggregates keep counting.
  if (impl_->pvars.size() + 2 > config_.pvar_capacity) return;
  const std::string prefix = "job." + std::to_string(job.id);
  using obs::PvarClass;
  using obs::PvarUnit;
  try {
    const obs::PvarId wait = impl_->pvars.register_pvar(
        prefix + ".queue_wait_ns", PvarClass::kTimer,
        "queue wait of job '" + job.spec.name + "'", PvarUnit::kNanoseconds);
    const obs::PvarId ranks = impl_->pvars.register_pvar(
        prefix + ".ranks", PvarClass::kLevel,
        "world size of job '" + job.spec.name + "'");
    impl_->pvars.add(wait, 0, queue_wait_ns);
    impl_->pvars.raise(ranks, 0, job.spec.config.world_size);
  } catch (const Error&) {
    // Lost a registration race against the capacity check; per-job
    // namespaces simply stop here.
  }
}

void JobManager::watchdog_loop() {
  constexpr auto kScanPeriod = std::chrono::microseconds(200);
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(impl_->wd_mu);
      if (impl_->wd_cv.wait_for(lk, kScanPeriod,
                                [this] { return impl_->wd_stop; })) {
        return;
      }
    }
    std::lock_guard<std::mutex> lk(impl_->active_mu);
    const std::int64_t now = now_ns();
    for (auto& entry : impl_->active_jobs) {
      detail::Job& job = *entry.job;
      if (job.quota_trip) continue;
      const JobQuota& q = job.spec.quota;
      std::string what;
      if (q.max_wall_ns > 0 && now - entry.start_ns > q.max_wall_ns) {
        what = "job '" + job.spec.name + "' exceeded its wall-clock budget (" +
               std::to_string(now - entry.start_ns) + " > " +
               std::to_string(q.max_wall_ns) + " ns)";
      } else if (q.max_slab_bytes > 0 &&
                 entry.uni->slab_stats().retained_bytes > q.max_slab_bytes) {
        what = "job '" + job.spec.name + "' exceeded its slab quota (" +
               std::to_string(entry.uni->slab_stats().retained_bytes) +
               " > " + std::to_string(q.max_slab_bytes) + " bytes retained)";
      } else if (q.max_outstanding_msgs > 0 &&
                 entry.uni->pvar_total("mpi.unexpected_hwm") >
                     q.max_outstanding_msgs) {
        what = "job '" + job.spec.name +
               "' exceeded its outstanding-message quota (" +
               std::to_string(entry.uni->pvar_total("mpi.unexpected_hwm")) +
               " > " + std::to_string(q.max_outstanding_msgs) + ")";
      }
      if (what.empty()) continue;
      job.quota_trip = true;
      job.quota_what = what;
      {
        std::lock_guard<std::mutex> stats_lk(impl_->mu);
        ++impl_->quota_trips;
        impl_->pvars.add(impl_->pv_quota_trips, 0, 1);
        impl_->record_flight(obs::FlightKind::kJobQuotaTrip, job);
      }
      entry.uni->kill_rank(0);
    }
  }
}

}  // namespace jhpc::jhpcd
