// Open MPI-J service mode: submit/await jobs against a resident jhpcd
// fleet, mirroring the mv2j Service facade (see jhpc/mv2j/service.hpp
// and docs/SERVICE.md). Both bindings can share one JobManager-backed
// fleet in a mixed deployment; this facade owns a private one.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "jhpc/jhpcd/jhpcd.hpp"
#include "jhpc/ompij/ompij.hpp"

namespace jhpc::ompij {

/// One service submission: a diagnostic name, the ordinary RunOptions,
/// and the jhpcd scheduling attributes.
struct ServiceJobOptions {
  std::string name;
  RunOptions run{};
  jhpcd::JobClass job_class = jhpcd::JobClass::kLatency;
  int priority = 0;
  jhpcd::JobQuota quota{};
};

/// A resident Open MPI-J scheduler.
class Service {
 public:
  explicit Service(jhpcd::ServiceConfig config = jhpcd::ServiceConfig{})
      : manager_(config) {}

  /// Queue a job; same admission/quota errors as JobManager::submit.
  jhpcd::JobHandle submit(const ServiceJobOptions& options,
                          std::function<void(Env&)> rank_main);

  /// Convenience: default scheduling attributes.
  jhpcd::JobHandle submit(const std::string& name, const RunOptions& options,
                          std::function<void(Env&)> rank_main) {
    ServiceJobOptions job;
    job.name = name;
    job.run = options;
    return submit(job, std::move(rank_main));
  }

  void drain() { manager_.drain(); }
  void shutdown() { manager_.shutdown(); }
  jhpcd::ServiceStats stats() const { return manager_.stats(); }

  jhpcd::JobManager& manager() { return manager_; }
  const jhpcd::JobManager& manager() const { return manager_; }

 private:
  jhpcd::JobManager manager_;
};

}  // namespace jhpc::ompij
