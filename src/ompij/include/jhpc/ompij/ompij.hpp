// The Open MPI Java bindings baseline ("Open MPI-J" in the paper).
//
// Same public API shape as MVAPICH2-J (which adopted this API), different
// implementation choices — faithfully reproduced because the paper's
// evaluation turns on them:
//
//   * Java arrays are staged through a freshly malloc'd native buffer on
//     EVERY call (Get/Set<Type>ArrayRegion, sized by the message): a copy
//     in, and a copy back for receive-like operations. No staging pool.
//   * Java arrays with non-blocking point-to-point operations are NOT
//     supported: iSend/iRecv with arrays throw UnsupportedOperationError.
//     (This is why the paper's bandwidth figures have no "Open MPI-J
//     arrays" series.)
//   * The native library underneath is the `basic` collective suite —
//     flat linear algorithms — which is where the paper's 6.2x/2.76x
//     collective gaps come from.
//
// Datatype/Op/Status constants are shared with mv2j (both libraries
// implement the same Java API).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/jarray.hpp"
#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/minimpi/comm.hpp"
#include "jhpc/minimpi/universe.hpp"
#include "jhpc/minimpi/win.hpp"
#include "jhpc/mv2j/request.hpp"
#include "jhpc/mv2j/types.hpp"
#include "jhpc/obs/obs.hpp"

namespace jhpc::ompij {

using minijvm::ByteBuffer;
using minijvm::JArray;
using minijvm::JavaPrimitive;
// The API constants are the same Java API; reuse the mv2j definitions.
using mv2j::Datatype;
using mv2j::kind_of;
using mv2j::Op;
using mv2j::Request;
using mv2j::Status;
using mv2j::ANY_SOURCE;
using mv2j::ANY_TAG;
using mv2j::Errhandler;
using mv2j::ERRORS_ARE_FATAL;
using mv2j::ERRORS_RETURN;

/// Passive-target lock modes (same Java names as MVAPICH2-J).
using LockType = minimpi::LockType;
inline constexpr LockType LOCK_EXCLUSIVE = minimpi::LockType::kExclusive;
inline constexpr LockType LOCK_SHARED = minimpi::LockType::kShared;

class Env;

/// mpi.Comm of the Open MPI-J baseline.
class Comm {
 public:
  Comm() = default;

  bool valid() const { return env_ != nullptr && native_.valid(); }
  int getRank() const { return native_.rank(); }
  int getSize() const { return native_.size(); }

  // --- Point-to-point: direct ByteBuffer API (zero copy) --------------------
  void send(const ByteBuffer& buf, int count, const Datatype& type, int dest,
            int tag) const;
  Status recv(ByteBuffer& buf, int count, const Datatype& type, int source,
              int tag) const;
  Request iSend(const ByteBuffer& buf, int count, const Datatype& type,
                int dest, int tag) const;
  Request iRecv(ByteBuffer& buf, int count, const Datatype& type, int source,
                int tag) const;

  // --- Point-to-point: Java array API (Get/Release copies) ------------------
  template <JavaPrimitive T>
  void send(const JArray<T>& buf, int count, const Datatype& type, int dest,
            int tag) const;
  template <JavaPrimitive T>
  Status recv(JArray<T>& buf, int count, const Datatype& type, int source,
              int tag) const;
  /// NOT SUPPORTED (throws UnsupportedOperationError): the Open MPI Java
  /// bindings cannot keep an array copy alive across a non-blocking call.
  template <JavaPrimitive T>
  Request iSend(const JArray<T>& buf, int count, const Datatype& type,
                int dest, int tag) const;
  /// NOT SUPPORTED (throws UnsupportedOperationError).
  template <JavaPrimitive T>
  Request iRecv(JArray<T>& buf, int count, const Datatype& type, int source,
                int tag) const;

  // --- Probing -------------------------------------------------------------
  Status probe(int source, int tag) const;
  bool iProbe(int source, int tag, Status* status) const;

  // --- Blocking collectives: ByteBuffer API -----------------------------------
  void barrier() const;
  void bcast(ByteBuffer& buf, int count, const Datatype& type,
             int root) const;
  void reduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
              const Datatype& type, const Op& op, int root) const;
  void allReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
                 const Datatype& type, const Op& op) const;
  void reduceScatterBlock(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                          int recvcount, const Datatype& type,
                          const Op& op) const;
  void scan(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
            const Datatype& type, const Op& op) const;
  void gather(const ByteBuffer& sendbuf, int count, const Datatype& type,
              ByteBuffer& recvbuf, int root) const;
  void scatter(const ByteBuffer& sendbuf, int count, const Datatype& type,
               ByteBuffer& recvbuf, int root) const;
  void allGather(const ByteBuffer& sendbuf, int count, const Datatype& type,
                 ByteBuffer& recvbuf) const;
  void allToAll(const ByteBuffer& sendbuf, int count, const Datatype& type,
                ByteBuffer& recvbuf) const;

  // --- Nonblocking collectives: ByteBuffer API (zero copy) ----------------
  // Same schedule engine as MVAPICH2-J underneath; direct buffers only
  // (arrays cannot outlive the call in this binding style — see iSend).
  Request iBarrier() const;
  Request iBcast(ByteBuffer& buf, int count, const Datatype& type,
                 int root) const;
  Request iReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf, int count,
                  const Datatype& type, const Op& op, int root) const;
  Request iAllReduce(const ByteBuffer& sendbuf, ByteBuffer& recvbuf,
                     int count, const Datatype& type, const Op& op) const;
  Request iGather(const ByteBuffer& sendbuf, int count, const Datatype& type,
                  ByteBuffer& recvbuf, int root) const;
  Request iScatter(const ByteBuffer& sendbuf, int count,
                   const Datatype& type, ByteBuffer& recvbuf, int root) const;
  Request iAllGather(const ByteBuffer& sendbuf, int count,
                     const Datatype& type, ByteBuffer& recvbuf) const;
  Request iAllToAll(const ByteBuffer& sendbuf, int count,
                    const Datatype& type, ByteBuffer& recvbuf) const;

  // --- Blocking collectives: Java array API (Get/Release around native) ------
  template <JavaPrimitive T>
  void bcast(JArray<T>& buf, int count, const Datatype& type,
             int root) const;
  template <JavaPrimitive T>
  void reduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
              const Datatype& type, const Op& op, int root) const;
  template <JavaPrimitive T>
  void allReduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                 const Datatype& type, const Op& op) const;
  template <JavaPrimitive T>
  void reduceScatterBlock(const JArray<T>& sendbuf, JArray<T>& recvbuf,
                          int recvcount, const Datatype& type,
                          const Op& op) const;
  template <JavaPrimitive T>
  void scan(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
            const Datatype& type, const Op& op) const;
  template <JavaPrimitive T>
  void gather(const JArray<T>& sendbuf, int count, const Datatype& type,
              JArray<T>& recvbuf, int root) const;
  template <JavaPrimitive T>
  void scatter(const JArray<T>& sendbuf, int count, const Datatype& type,
               JArray<T>& recvbuf, int root) const;
  template <JavaPrimitive T>
  void allGather(const JArray<T>& sendbuf, int count, const Datatype& type,
                 JArray<T>& recvbuf) const;
  template <JavaPrimitive T>
  void allToAll(const JArray<T>& sendbuf, int count, const Datatype& type,
                JArray<T>& recvbuf) const;

  // --- Vectored blocking collectives (counts/displs in elements) -----------
  void gatherv(const ByteBuffer& sendbuf, int sendcount,
               const Datatype& type, ByteBuffer& recvbuf,
               std::span<const int> recvcounts, std::span<const int> displs,
               int root) const;
  void scatterv(const ByteBuffer& sendbuf, std::span<const int> sendcounts,
                std::span<const int> displs, const Datatype& type,
                ByteBuffer& recvbuf, int recvcount, int root) const;
  void allGatherv(const ByteBuffer& sendbuf, int sendcount,
                  const Datatype& type, ByteBuffer& recvbuf,
                  std::span<const int> recvcounts,
                  std::span<const int> displs) const;
  void allToAllv(const ByteBuffer& sendbuf, std::span<const int> sendcounts,
                 std::span<const int> sdispls, const Datatype& type,
                 ByteBuffer& recvbuf, std::span<const int> recvcounts,
                 std::span<const int> rdispls) const;

  template <JavaPrimitive T>
  void gatherv(const JArray<T>& sendbuf, int sendcount, const Datatype& type,
               JArray<T>& recvbuf, std::span<const int> recvcounts,
               std::span<const int> displs, int root) const;
  template <JavaPrimitive T>
  void scatterv(const JArray<T>& sendbuf, std::span<const int> sendcounts,
                std::span<const int> displs, const Datatype& type,
                JArray<T>& recvbuf, int recvcount, int root) const;
  template <JavaPrimitive T>
  void allGatherv(const JArray<T>& sendbuf, int sendcount,
                  const Datatype& type, JArray<T>& recvbuf,
                  std::span<const int> recvcounts,
                  std::span<const int> displs) const;
  template <JavaPrimitive T>
  void allToAllv(const JArray<T>& sendbuf, std::span<const int> sendcounts,
                 std::span<const int> sdispls, const Datatype& type,
                 JArray<T>& recvbuf, std::span<const int> recvcounts,
                 std::span<const int> rdispls) const;

  // --- One-sided communication (mpi.Win) ------------------------------------
  class Win winCreate(ByteBuffer& buf, std::size_t bytes) const;
  class Win winAllocate(std::size_t bytes) const;

  // --- Communicator management --------------------------------------------------
  Comm dup() const;
  Comm split(int color, int key) const;

  // --- Fault tolerance (the MPIX/ULFM extension surface) --------------------
  /// Same contract as the mv2j bindings: rank-failure policy (default
  /// ERRORS_ARE_FATAL, inherited by derived communicators), revocation,
  /// survivors-only shrink, and fault-tolerant agreement.
  void setErrhandler(Errhandler eh) const;
  Errhandler getErrhandler() const;
  void revoke() const;
  Comm shrink() const;
  int agree(int flag) const;
  std::vector<int> getFailedRanks() const;

  const minimpi::Comm& native() const { return native_; }

 private:
  friend class Env;
  friend class Win;  // one-sided paths reuse buffer_address/env_
  Comm(Env* env, minimpi::Comm native) : env_(env), native_(native) {}

  std::byte* buffer_address(const ByteBuffer& buf, std::size_t bytes,
                            const char* what) const;

  Env* env_ = nullptr;
  minimpi::Comm native_;
};

/// mpi.Win of the Open MPI-J baseline: the same one-sided ByteBuffer API
/// as MVAPICH2-J (both bindings expose the same Java API) over the same
/// native window engine. Direct buffers only — an array origin would
/// need a staged copy, which defeats one-sided transfers outright, so
/// this binding never offered one. Every call pays the baseline's extra
/// per-call object-graph marshalling (crossing + handle walk).
class Win {
 public:
  Win() = default;

  bool valid() const { return native_.valid(); }
  int getRank() const { return native_.rank(); }
  int getSize() const { return native_.size(); }
  std::size_t getBytes(int targetRank) const {
    return native_.bytes(targetRank);
  }

  void put(const ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset) const;
  void put(const ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset,
           const Datatype& targetType) const;
  void get(ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset) const;
  void get(ByteBuffer& origin, int count, const Datatype& type,
           int targetRank, std::size_t targetOffset,
           const Datatype& targetType) const;
  void accumulate(const ByteBuffer& origin, int count, const Datatype& type,
                  const Op& op, int targetRank,
                  std::size_t targetOffset) const;
  void fetchOp(const ByteBuffer& value, ByteBuffer& result,
               const Datatype& type, const Op& op, int targetRank,
               std::size_t targetOffset) const;

  void fence() const;
  void post(std::span<const int> group) const;
  void start(std::span<const int> group) const;
  void complete() const;
  void waitFor() const;
  void lock(LockType type, int targetRank) const;
  void unlock(int targetRank) const;
  void lockAll() const;
  void unlockAll() const;

  void free();

  const minimpi::Win& native() const { return native_; }

 private:
  friend class Comm;
  Win(Comm comm, minimpi::Win native)
      : comm_(std::move(comm)), native_(std::move(native)) {}

  std::byte* origin_address(const ByteBuffer& buf, int count,
                            const Datatype& type, const char* what) const;

  Comm comm_;
  minimpi::Win native_;
};

/// Job-level options.
struct RunOptions {
  int ranks = 2;
  netsim::FabricConfig fabric{};
  std::size_t eager_limit = 16 * 1024;
  minijvm::JvmConfig jvm = minijvm::JvmConfig::from_env();
  /// Observability switches (JHPC_PVARS / JHPC_TRACE by default).
  obs::ObsConfig obs = obs::ObsConfig::from_env();
  /// Run collectives on the topology-aware hierarchical engine instead
  /// of the basic linear/binomial ones (JHPC_COLL=hier equivalent).
  bool hier_collectives = false;

  /// Native configuration: suite forced to kOmpiBasic ("Open MPI"),
  /// unless `hier_collectives` selects the hierarchical engine.
  minimpi::UniverseConfig universe_config() const;
};

/// One rank's Open MPI-J environment: a JVM plus COMM_WORLD. No buffer
/// pool — this baseline does not have one.
class Env {
 public:
  Env(minimpi::Comm& native_world, const RunOptions& options);
  ~Env();
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  Comm& COMM_WORLD() { return world_; }
  minijvm::Jvm& jvm() { return *jvm_; }

  // --- MPI_T-style tool access (mirrors the mv2j Env API) ----------------
  /// The job's performance-variable registry, or nullptr when disabled.
  obs::PvarRegistry* pvars() const { return world_.native().pvars(); }
  /// This rank's value of pvar `name`; 0 when unknown or disabled.
  std::int64_t readPvar(const std::string& name) const;
  /// This rank's decoded distribution of histogram pvar `name` (raw
  /// registered units); an empty reading when unknown or disabled.
  obs::HistReading readHistogram(const std::string& name) const;
  /// Percentile `p` (0..100) of this rank's histogram `name`.
  std::int64_t histogramPercentile(const std::string& name, double p) const;

  ByteBuffer newDirectBuffer(std::size_t bytes) {
    return ByteBuffer::allocate_direct(bytes);
  }
  template <JavaPrimitive T>
  JArray<T> newArray(std::size_t n) {
    return jvm_->new_array<T>(n);
  }

 private:
  friend class Comm;
  std::unique_ptr<minijvm::Jvm> jvm_;
  Comm world_;
};

/// Launch an Open MPI-J job.
void run(const RunOptions& options, const std::function<void(Env&)>& rank_main);

}  // namespace jhpc::ompij
