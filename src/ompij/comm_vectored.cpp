// Vectored blocking collectives of the Open MPI-J baseline: ByteBuffer
// paths are zero-copy; array paths use the same per-call Get/Release
// copies as the other array collectives.
#include "jhpc/minijvm/jni.hpp"
#include "jhpc/ompij/ompij.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::ompij {
namespace {

void to_bytes(std::span<const int> in, std::size_t el,
              std::vector<std::size_t>* out) {
  out->clear();
  out->reserve(in.size());
  for (int v : in) {
    JHPC_REQUIRE(v >= 0, "negative count/displacement");
    out->push_back(static_cast<std::size_t>(v) * el);
  }
}

std::size_t span_end(const std::vector<std::size_t>& counts,
                     const std::vector<std::size_t>& offs) {
  std::size_t end = 0;
  for (std::size_t i = 0; i < counts.size(); ++i)
    end = std::max(end, offs[i] + counts[i]);
  return end;
}

/// RAII native staging for `count` elements of an array, mirroring what
/// the Open MPI Java bindings do per call: malloc a native buffer of the
/// MESSAGE size, Get<Type>ArrayRegion in (unless write-only), and
/// Set<Type>ArrayRegion back on destruction (unless read-only). No
/// pooling — the allocation happens on every call, which is the overhead
/// MVAPICH2-J's buffering layer avoids.
template <minijvm::JavaPrimitive T>
class ArrayRegion {
 public:
  ArrayRegion(minijvm::JniEnv& jni, const JArray<T>& array,
              std::size_t count, minijvm::ReleaseMode mode)
      : jni_(jni), array_(array), count_(count), mode_(mode),
        elems_(count) {
    // Open MPI-J copies in unconditionally (it cannot know whether the
    // native routine reads the buffer).
    jni_.get_array_region(array_, 0, count_, elems_.data());
  }
  ~ArrayRegion() {
    if (mode_ != minijvm::ReleaseMode::kAbort) {
      jni_.set_array_region(array_, 0, count_, elems_.data());
    }
  }
  ArrayRegion(const ArrayRegion&) = delete;
  ArrayRegion& operator=(const ArrayRegion&) = delete;

  T* data() { return elems_.data(); }

 private:
  minijvm::JniEnv& jni_;
  JArray<T> array_;
  std::size_t count_;
  minijvm::ReleaseMode mode_;
  std::vector<T> elems_;
};

}  // namespace

void Comm::gatherv(const ByteBuffer& sendbuf, int sendcount,
                   const Datatype& type, ByteBuffer& recvbuf,
                   std::span<const int> recvcounts,
                   std::span<const int> displs, int root) const {
  JHPC_REQUIRE(valid(), "gatherv on invalid communicator");
  const std::size_t sbytes =
      static_cast<std::size_t>(sendcount) * type.size();
  std::vector<std::size_t> counts, offs;
  to_bytes(recvcounts, type.size(), &counts);
  to_bytes(displs, type.size(), &offs);
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, sbytes, "gatherv");
  std::byte* rp = getRank() == root
                      ? buffer_address(recvbuf, span_end(counts, offs),
                                       "gatherv")
                      : nullptr;
  native_.gatherv(sp, sbytes, rp, counts, offs, root);
}

void Comm::scatterv(const ByteBuffer& sendbuf,
                    std::span<const int> sendcounts,
                    std::span<const int> displs, const Datatype& type,
                    ByteBuffer& recvbuf, int recvcount, int root) const {
  JHPC_REQUIRE(valid(), "scatterv on invalid communicator");
  const std::size_t rbytes =
      static_cast<std::size_t>(recvcount) * type.size();
  std::vector<std::size_t> counts, offs;
  to_bytes(sendcounts, type.size(), &counts);
  to_bytes(displs, type.size(), &offs);
  env_->jvm_->jni().crossing();
  const std::byte* sp = getRank() == root
                            ? buffer_address(sendbuf, span_end(counts, offs),
                                             "scatterv")
                            : nullptr;
  std::byte* rp = buffer_address(recvbuf, rbytes, "scatterv");
  native_.scatterv(sp, counts, offs, rp, rbytes, root);
}

void Comm::allGatherv(const ByteBuffer& sendbuf, int sendcount,
                      const Datatype& type, ByteBuffer& recvbuf,
                      std::span<const int> recvcounts,
                      std::span<const int> displs) const {
  JHPC_REQUIRE(valid(), "allGatherv on invalid communicator");
  const std::size_t sbytes =
      static_cast<std::size_t>(sendcount) * type.size();
  std::vector<std::size_t> counts, offs;
  to_bytes(recvcounts, type.size(), &counts);
  to_bytes(displs, type.size(), &offs);
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, sbytes, "allGatherv");
  std::byte* rp =
      buffer_address(recvbuf, span_end(counts, offs), "allGatherv");
  native_.allgatherv(sp, sbytes, rp, counts, offs);
}

void Comm::allToAllv(const ByteBuffer& sendbuf,
                     std::span<const int> sendcounts,
                     std::span<const int> sdispls, const Datatype& type,
                     ByteBuffer& recvbuf, std::span<const int> recvcounts,
                     std::span<const int> rdispls) const {
  JHPC_REQUIRE(valid(), "allToAllv on invalid communicator");
  std::vector<std::size_t> sc, so, rc, ro;
  to_bytes(sendcounts, type.size(), &sc);
  to_bytes(sdispls, type.size(), &so);
  to_bytes(recvcounts, type.size(), &rc);
  to_bytes(rdispls, type.size(), &ro);
  env_->jvm_->jni().crossing();
  const std::byte* sp = buffer_address(sendbuf, span_end(sc, so),
                                       "allToAllv");
  std::byte* rp = buffer_address(recvbuf, span_end(rc, ro), "allToAllv");
  native_.alltoallv(sp, sc, so, rp, rc, ro);
}

template <JavaPrimitive T>
void Comm::gatherv(const JArray<T>& sendbuf, int sendcount,
                   const Datatype& type, JArray<T>& recvbuf,
                   std::span<const int> recvcounts,
                   std::span<const int> displs, int root) const {
  JHPC_REQUIRE(valid(), "gatherv on invalid communicator");
  JHPC_REQUIRE(type.isBasic() && kind_of<T>() == type.kind(),
               "gatherv: datatype does not match array type");
  std::vector<std::size_t> counts, offs;
  to_bytes(recvcounts, sizeof(T), &counts);
  to_bytes(displs, sizeof(T), &offs);
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(sendcount),
                      minijvm::ReleaseMode::kAbort);
  if (getRank() == root) {
    JHPC_REQUIRE(recvbuf.length() * sizeof(T) >= span_end(counts, offs),
                 "gatherv: receive array too small");
    ArrayRegion<T> recv(jni, recvbuf, span_end(counts, offs) / sizeof(T),
                        minijvm::ReleaseMode::kCommitAndFree);
    native_.gatherv(send.data(),
                    static_cast<std::size_t>(sendcount) * sizeof(T),
                    recv.data(), counts, offs, root);
  } else {
    native_.gatherv(send.data(),
                    static_cast<std::size_t>(sendcount) * sizeof(T), nullptr,
                    counts, offs, root);
  }
}

template <JavaPrimitive T>
void Comm::scatterv(const JArray<T>& sendbuf,
                    std::span<const int> sendcounts,
                    std::span<const int> displs, const Datatype& type,
                    JArray<T>& recvbuf, int recvcount, int root) const {
  JHPC_REQUIRE(valid(), "scatterv on invalid communicator");
  JHPC_REQUIRE(type.isBasic() && kind_of<T>() == type.kind(),
               "scatterv: datatype does not match array type");
  std::vector<std::size_t> counts, offs;
  to_bytes(sendcounts, sizeof(T), &counts);
  to_bytes(displs, sizeof(T), &offs);
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> recv(jni, recvbuf, static_cast<std::size_t>(recvcount),
                      minijvm::ReleaseMode::kCommitAndFree);
  if (getRank() == root) {
    JHPC_REQUIRE(sendbuf.length() * sizeof(T) >= span_end(counts, offs),
                 "scatterv: send array too small");
    ArrayRegion<T> send(jni, sendbuf, span_end(counts, offs) / sizeof(T),
                        minijvm::ReleaseMode::kAbort);
    native_.scatterv(send.data(), counts, offs, recv.data(),
                     static_cast<std::size_t>(recvcount) * sizeof(T), root);
  } else {
    native_.scatterv(nullptr, counts, offs, recv.data(),
                     static_cast<std::size_t>(recvcount) * sizeof(T), root);
  }
}

template <JavaPrimitive T>
void Comm::allGatherv(const JArray<T>& sendbuf, int sendcount,
                      const Datatype& type, JArray<T>& recvbuf,
                      std::span<const int> recvcounts,
                      std::span<const int> displs) const {
  JHPC_REQUIRE(valid(), "allGatherv on invalid communicator");
  JHPC_REQUIRE(type.isBasic() && kind_of<T>() == type.kind(),
               "allGatherv: datatype does not match array type");
  std::vector<std::size_t> counts, offs;
  to_bytes(recvcounts, sizeof(T), &counts);
  to_bytes(displs, sizeof(T), &offs);
  JHPC_REQUIRE(recvbuf.length() * sizeof(T) >= span_end(counts, offs),
               "allGatherv: receive array too small");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(sendcount),
                      minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf, span_end(counts, offs) / sizeof(T),
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.allgatherv(send.data(),
                     static_cast<std::size_t>(sendcount) * sizeof(T),
                     recv.data(), counts, offs);
}

template <JavaPrimitive T>
void Comm::allToAllv(const JArray<T>& sendbuf,
                     std::span<const int> sendcounts,
                     std::span<const int> sdispls, const Datatype& type,
                     JArray<T>& recvbuf, std::span<const int> recvcounts,
                     std::span<const int> rdispls) const {
  JHPC_REQUIRE(valid(), "allToAllv on invalid communicator");
  JHPC_REQUIRE(type.isBasic() && kind_of<T>() == type.kind(),
               "allToAllv: datatype does not match array type");
  std::vector<std::size_t> sc, so, rc, ro;
  to_bytes(sendcounts, sizeof(T), &sc);
  to_bytes(sdispls, sizeof(T), &so);
  to_bytes(recvcounts, sizeof(T), &rc);
  to_bytes(rdispls, sizeof(T), &ro);
  JHPC_REQUIRE(sendbuf.length() * sizeof(T) >= span_end(sc, so),
               "allToAllv: send array too small");
  JHPC_REQUIRE(recvbuf.length() * sizeof(T) >= span_end(rc, ro),
               "allToAllv: receive array too small");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, span_end(sc, so) / sizeof(T),
                      minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf, span_end(rc, ro) / sizeof(T),
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.alltoallv(send.data(), sc, so, recv.data(), rc, ro);
}

#define JHPC_OMPIJ_V_INSTANTIATE(T)                                          \
  template void Comm::gatherv<T>(const JArray<T>&, int, const Datatype&,     \
                                 JArray<T>&, std::span<const int>,           \
                                 std::span<const int>, int) const;           \
  template void Comm::scatterv<T>(const JArray<T>&, std::span<const int>,    \
                                  std::span<const int>, const Datatype&,     \
                                  JArray<T>&, int, int) const;               \
  template void Comm::allGatherv<T>(const JArray<T>&, int, const Datatype&,  \
                                    JArray<T>&, std::span<const int>,        \
                                    std::span<const int>) const;             \
  template void Comm::allToAllv<T>(const JArray<T>&, std::span<const int>,   \
                                   std::span<const int>, const Datatype&,    \
                                   JArray<T>&, std::span<const int>,         \
                                   std::span<const int>) const;

JHPC_OMPIJ_V_INSTANTIATE(minijvm::jbyte)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jboolean)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jchar)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jshort)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jint)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jlong)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jfloat)
JHPC_OMPIJ_V_INSTANTIATE(minijvm::jdouble)
#undef JHPC_OMPIJ_V_INSTANTIATE

}  // namespace jhpc::ompij
