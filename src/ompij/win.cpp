// One-sided (mpi.Win) paths of the Open MPI-J baseline. Same native
// window engine as MVAPICH2-J; what differs is the per-call binding
// overhead — this baseline walks a Datatype/Win object graph on every
// call (crossing + handle_check), the gap the paper's point-to-point
// figures attribute to binding thickness.
#include "jhpc/ompij/ompij.hpp"

#include <vector>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::ompij {

namespace {
std::size_t payload_bytes(int count, const Datatype& type) {
  JHPC_REQUIRE(count >= 0, "negative element count");
  return static_cast<std::size_t>(count) * type.size();
}
}  // namespace

std::byte* Win::origin_address(const ByteBuffer& buf, int count,
                               const Datatype& type, const char* what) const {
  JHPC_REQUIRE(valid(), std::string(what) + " on invalid window");
  JHPC_REQUIRE(count >= 0, "negative element count");
  // Origins are packed payloads (the window engine packs/scatters derived
  // layouts target-side), so capacity checks use size().
  minijvm::JniEnv& jni = comm_.env_->jvm().jni();
  jni.crossing();
  jni.handle_check();
  return comm_.buffer_address(buf, payload_bytes(count, type), what);
}

void Win::put(const ByteBuffer& origin, int count, const Datatype& type,
              int targetRank, std::size_t targetOffset) const {
  const std::byte* p = origin_address(origin, count, type, "Win.put");
  if (type.isBasic()) {
    native_.put(p, payload_bytes(count, type), targetRank, targetOffset);
  } else {
    native_.put(p, count, type.native(), targetRank, targetOffset,
                type.native());
  }
}

void Win::put(const ByteBuffer& origin, int count, const Datatype& type,
              int targetRank, std::size_t targetOffset,
              const Datatype& targetType) const {
  const std::byte* p = origin_address(origin, count, type, "Win.put");
  native_.put(p, count, type.native(), targetRank, targetOffset,
              targetType.native());
}

void Win::get(ByteBuffer& origin, int count, const Datatype& type,
              int targetRank, std::size_t targetOffset) const {
  std::byte* p = origin_address(origin, count, type, "Win.get");
  if (type.isBasic()) {
    native_.get(p, payload_bytes(count, type), targetRank, targetOffset);
  } else {
    native_.get(p, count, type.native(), targetRank, targetOffset,
                type.native());
  }
}

void Win::get(ByteBuffer& origin, int count, const Datatype& type,
              int targetRank, std::size_t targetOffset,
              const Datatype& targetType) const {
  std::byte* p = origin_address(origin, count, type, "Win.get");
  native_.get(p, count, type.native(), targetRank, targetOffset,
              targetType.native());
}

void Win::accumulate(const ByteBuffer& origin, int count,
                     const Datatype& type, const Op& op, int targetRank,
                     std::size_t targetOffset) const {
  const std::byte* p = origin_address(origin, count, type, "Win.accumulate");
  native_.accumulate(p, count, type.native(), op.native(), targetRank,
                     targetOffset);
}

void Win::fetchOp(const ByteBuffer& value, ByteBuffer& result,
                  const Datatype& type, const Op& op, int targetRank,
                  std::size_t targetOffset) const {
  JHPC_REQUIRE(type.isBasic(), "Win.fetchOp requires a basic datatype");
  const std::byte* v = origin_address(value, 1, type, "Win.fetchOp");
  std::byte* r = comm_.buffer_address(result, type.size(), "Win.fetchOp");
  native_.fetch_op(v, r, type.kind(), op.native(), targetRank, targetOffset);
}

void Win::fence() const {
  JHPC_REQUIRE(valid(), "fence on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.fence();
}

void Win::post(std::span<const int> group) const {
  JHPC_REQUIRE(valid(), "post on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.post(std::vector<int>(group.begin(), group.end()));
}

void Win::start(std::span<const int> group) const {
  JHPC_REQUIRE(valid(), "start on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.start(std::vector<int>(group.begin(), group.end()));
}

void Win::complete() const {
  JHPC_REQUIRE(valid(), "complete on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.complete();
}

void Win::waitFor() const {
  JHPC_REQUIRE(valid(), "waitFor on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.wait();
}

void Win::lock(LockType type, int targetRank) const {
  JHPC_REQUIRE(valid(), "lock on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.lock(type, targetRank);
}

void Win::unlock(int targetRank) const {
  JHPC_REQUIRE(valid(), "unlock on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.unlock(targetRank);
}

void Win::lockAll() const {
  JHPC_REQUIRE(valid(), "lockAll on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.lock_all();
}

void Win::unlockAll() const {
  JHPC_REQUIRE(valid(), "unlockAll on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.unlock_all();
}

void Win::free() {
  JHPC_REQUIRE(valid(), "free on invalid window");
  comm_.env_->jvm().jni().crossing();
  native_.free();
  comm_ = Comm();
}

Win Comm::winCreate(ByteBuffer& buf, std::size_t bytes) const {
  JHPC_REQUIRE(valid(), "winCreate on invalid communicator");
  env_->jvm().jni().crossing();
  std::byte* base = buffer_address(buf, bytes, "winCreate");
  return Win(*this, native_.win_create(base, bytes));
}

Win Comm::winAllocate(std::size_t bytes) const {
  JHPC_REQUIRE(valid(), "winAllocate on invalid communicator");
  env_->jvm().jni().crossing();
  return Win(*this, native_.win_allocate(bytes));
}

}  // namespace jhpc::ompij
