// Java-array paths of the Open MPI-J baseline: Get<Type>ArrayElements /
// Release<Type>ArrayElements around every native call (a full-array copy
// each way, no pooling), and NO support for arrays with non-blocking
// point-to-point operations — both reproduced from the paper's
// description of the Open MPI Java bindings.
#include "jhpc/minijvm/jni.hpp"
#include "jhpc/ompij/ompij.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::ompij {

namespace {

template <minijvm::JavaPrimitive T>
void check_args(const JArray<T>& buf, int count, const Datatype& type,
                const char* what) {
  JHPC_REQUIRE(count >= 0, std::string(what) + ": negative count");
  JHPC_REQUIRE(type.isBasic() && kind_of<T>() == type.kind(),
               std::string(what) + ": datatype does not match array type");
  JHPC_REQUIRE(static_cast<std::size_t>(count) <= buf.length(),
               std::string(what) + ": count exceeds array length");
}

/// RAII native staging for `count` elements of an array, mirroring what
/// the Open MPI Java bindings do per call: malloc a native buffer of the
/// MESSAGE size, Get<Type>ArrayRegion in (unless write-only), and
/// Set<Type>ArrayRegion back on destruction (unless read-only). No
/// pooling — the allocation happens on every call, which is the overhead
/// MVAPICH2-J's buffering layer avoids.
template <minijvm::JavaPrimitive T>
class ArrayRegion {
 public:
  ArrayRegion(minijvm::JniEnv& jni, const JArray<T>& array,
              std::size_t count, minijvm::ReleaseMode mode)
      : jni_(jni), array_(array), count_(count), mode_(mode),
        elems_(count) {
    // Open MPI-J copies in unconditionally (it cannot know whether the
    // native routine reads the buffer).
    jni_.get_array_region(array_, 0, count_, elems_.data());
  }
  ~ArrayRegion() {
    if (mode_ != minijvm::ReleaseMode::kAbort) {
      jni_.set_array_region(array_, 0, count_, elems_.data());
    }
  }
  ArrayRegion(const ArrayRegion&) = delete;
  ArrayRegion& operator=(const ArrayRegion&) = delete;

  T* data() { return elems_.data(); }

 private:
  minijvm::JniEnv& jni_;
  JArray<T> array_;
  std::size_t count_;
  minijvm::ReleaseMode mode_;
  std::vector<T> elems_;
};

}  // namespace

// --- Point-to-point --------------------------------------------------------

template <JavaPrimitive T>
void Comm::send(const JArray<T>& buf, int count, const Datatype& type,
                int dest, int tag) const {
  JHPC_REQUIRE(valid(), "send on invalid communicator");
  check_args(buf, count, type, "send");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  // Sender never writes back: discard on release.
  ArrayRegion<T> elems(jni, buf, static_cast<std::size_t>(count),
                       minijvm::ReleaseMode::kAbort);
  native_.send(elems.data(), static_cast<std::size_t>(count) * sizeof(T),
               dest, tag);
}

template <JavaPrimitive T>
Status Comm::recv(JArray<T>& buf, int count, const Datatype& type,
                  int source, int tag) const {
  JHPC_REQUIRE(valid(), "recv on invalid communicator");
  check_args(buf, count, type, "recv");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  minimpi::Status st;
  {
    // Copy-in (wasted work for a pure receive — the JNI price), receive
    // into the copy, copy-back on release.
    ArrayRegion<T> elems(jni, buf, static_cast<std::size_t>(count),
                         minijvm::ReleaseMode::kCommitAndFree);
    native_.recv(elems.data(), static_cast<std::size_t>(count) * sizeof(T),
                 source, tag, &st);
  }
  return Status(st);
}

template <JavaPrimitive T>
Request Comm::iSend(const JArray<T>&, int, const Datatype&, int, int) const {
  throw UnsupportedOperationError(
      "Open MPI-J does not support Java arrays with non-blocking "
      "point-to-point operations (use a direct ByteBuffer)");
}

template <JavaPrimitive T>
Request Comm::iRecv(JArray<T>&, int, const Datatype&, int, int) const {
  throw UnsupportedOperationError(
      "Open MPI-J does not support Java arrays with non-blocking "
      "point-to-point operations (use a direct ByteBuffer)");
}

// --- Blocking collectives ------------------------------------------------------

template <JavaPrimitive T>
void Comm::bcast(JArray<T>& buf, int count, const Datatype& type,
                 int root) const {
  JHPC_REQUIRE(valid(), "bcast on invalid communicator");
  check_args(buf, count, type, "bcast");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> elems(jni, buf, static_cast<std::size_t>(count),
                       getRank() == root
                           ? minijvm::ReleaseMode::kAbort
                           : minijvm::ReleaseMode::kCommitAndFree);
  native_.bcast(elems.data(), static_cast<std::size_t>(count) * sizeof(T),
                root);
}

template <JavaPrimitive T>
void Comm::reduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                  const Datatype& type, const Op& op, int root) const {
  JHPC_REQUIRE(valid(), "reduce on invalid communicator");
  check_args(sendbuf, count, type, "reduce");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kAbort);
  if (getRank() == root) {
    check_args(recvbuf, count, type, "reduce(recv)");
    ArrayRegion<T> recv(jni, recvbuf, static_cast<std::size_t>(count),
                        minijvm::ReleaseMode::kCommitAndFree);
    native_.reduce(send.data(), recv.data(),
                   static_cast<std::size_t>(count), type.kind(), op.native(),
                   root);
  } else {
    std::vector<T> scratch(static_cast<std::size_t>(count));
    native_.reduce(send.data(), scratch.data(),
                   static_cast<std::size_t>(count), type.kind(), op.native(),
                   root);
  }
}

template <JavaPrimitive T>
void Comm::allReduce(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                     const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "allReduce on invalid communicator");
  check_args(sendbuf, count, type, "allReduce");
  check_args(recvbuf, count, type, "allReduce(recv)");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.allreduce(send.data(), recv.data(),
                    static_cast<std::size_t>(count), type.kind(),
                    op.native());
}

template <JavaPrimitive T>
void Comm::reduceScatterBlock(const JArray<T>& sendbuf, JArray<T>& recvbuf,
                              int recvcount, const Datatype& type,
                              const Op& op) const {
  JHPC_REQUIRE(valid(), "reduceScatterBlock on invalid communicator");
  check_args(recvbuf, recvcount, type, "reduceScatterBlock(recv)");
  const auto total = static_cast<std::size_t>(recvcount) *
                     static_cast<std::size_t>(getSize());
  JHPC_REQUIRE(sendbuf.length() >= total,
               "reduceScatterBlock: send array too small");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, total, minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf, static_cast<std::size_t>(recvcount),
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.reduce_scatter_block(send.data(), recv.data(),
                               static_cast<std::size_t>(recvcount),
                               type.kind(), op.native());
}

template <JavaPrimitive T>
void Comm::scan(const JArray<T>& sendbuf, JArray<T>& recvbuf, int count,
                const Datatype& type, const Op& op) const {
  JHPC_REQUIRE(valid(), "scan on invalid communicator");
  check_args(sendbuf, count, type, "scan");
  check_args(recvbuf, count, type, "scan(recv)");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.scan(send.data(), recv.data(), static_cast<std::size_t>(count),
               type.kind(), op.native());
}

template <JavaPrimitive T>
void Comm::gather(const JArray<T>& sendbuf, int count, const Datatype& type,
                  JArray<T>& recvbuf, int root) const {
  JHPC_REQUIRE(valid(), "gather on invalid communicator");
  check_args(sendbuf, count, type, "gather");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kAbort);
  if (getRank() == root) {
    const auto total = static_cast<std::size_t>(count) *
                       static_cast<std::size_t>(getSize());
    JHPC_REQUIRE(recvbuf.length() >= total,
                 "gather: receive array too small");
    ArrayRegion<T> recv(jni, recvbuf, total,
                        minijvm::ReleaseMode::kCommitAndFree);
    native_.gather(send.data(), bytes, recv.data(), root);
  } else {
    native_.gather(send.data(), bytes, nullptr, root);
  }
}

template <JavaPrimitive T>
void Comm::scatter(const JArray<T>& sendbuf, int count, const Datatype& type,
                   JArray<T>& recvbuf, int root) const {
  JHPC_REQUIRE(valid(), "scatter on invalid communicator");
  check_args(recvbuf, count, type, "scatter(recv)");
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> recv(jni, recvbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kCommitAndFree);
  if (getRank() == root) {
    const auto total = static_cast<std::size_t>(count) *
                       static_cast<std::size_t>(getSize());
    JHPC_REQUIRE(sendbuf.length() >= total,
                 "scatter: send array too small");
    ArrayRegion<T> send(jni, sendbuf, total, minijvm::ReleaseMode::kAbort);
    native_.scatter(send.data(), bytes, recv.data(), root);
  } else {
    native_.scatter(nullptr, bytes, recv.data(), root);
  }
}

template <JavaPrimitive T>
void Comm::allGather(const JArray<T>& sendbuf, int count,
                     const Datatype& type, JArray<T>& recvbuf) const {
  JHPC_REQUIRE(valid(), "allGather on invalid communicator");
  check_args(sendbuf, count, type, "allGather");
  JHPC_REQUIRE(recvbuf.length() >= static_cast<std::size_t>(count) *
                                       static_cast<std::size_t>(getSize()),
               "allGather: receive array too small");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, static_cast<std::size_t>(count),
                      minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf,
                      static_cast<std::size_t>(count) *
                          static_cast<std::size_t>(getSize()),
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.allgather(send.data(), static_cast<std::size_t>(count) * sizeof(T),
                    recv.data());
}

template <JavaPrimitive T>
void Comm::allToAll(const JArray<T>& sendbuf, int count,
                    const Datatype& type, JArray<T>& recvbuf) const {
  JHPC_REQUIRE(valid(), "allToAll on invalid communicator");
  JHPC_REQUIRE(type.isBasic() && kind_of<T>() == type.kind(),
               "allToAll: datatype does not match array type");
  const auto total = static_cast<std::size_t>(count) *
                     static_cast<std::size_t>(getSize());
  JHPC_REQUIRE(sendbuf.length() >= total, "allToAll: send array too small");
  JHPC_REQUIRE(recvbuf.length() >= total,
               "allToAll: receive array too small");
  minijvm::JniEnv& jni = env_->jvm_->jni();
  jni.crossing();
  ArrayRegion<T> send(jni, sendbuf, total, minijvm::ReleaseMode::kAbort);
  ArrayRegion<T> recv(jni, recvbuf, total,
                      minijvm::ReleaseMode::kCommitAndFree);
  native_.alltoall(send.data(), static_cast<std::size_t>(count) * sizeof(T),
                   recv.data());
}

// --- Explicit instantiations ---------------------------------------------------

#define JHPC_OMPIJ_INSTANTIATE(T)                                            \
  template void Comm::send<T>(const JArray<T>&, int, const Datatype&, int,   \
                              int) const;                                    \
  template Status Comm::recv<T>(JArray<T>&, int, const Datatype&, int, int)  \
      const;                                                                 \
  template Request Comm::iSend<T>(const JArray<T>&, int, const Datatype&,    \
                                  int, int) const;                           \
  template Request Comm::iRecv<T>(JArray<T>&, int, const Datatype&, int,     \
                                  int) const;                                \
  template void Comm::bcast<T>(JArray<T>&, int, const Datatype&, int) const; \
  template void Comm::reduce<T>(const JArray<T>&, JArray<T>&, int,           \
                                const Datatype&, const Op&, int) const;      \
  template void Comm::allReduce<T>(const JArray<T>&, JArray<T>&, int,        \
                                   const Datatype&, const Op&) const;        \
  template void Comm::reduceScatterBlock<T>(const JArray<T>&, JArray<T>&,    \
                                            int, const Datatype&,            \
                                            const Op&) const;                \
  template void Comm::scan<T>(const JArray<T>&, JArray<T>&, int,             \
                              const Datatype&, const Op&) const;             \
  template void Comm::gather<T>(const JArray<T>&, int, const Datatype&,      \
                                JArray<T>&, int) const;                      \
  template void Comm::scatter<T>(const JArray<T>&, int, const Datatype&,     \
                                 JArray<T>&, int) const;                     \
  template void Comm::allGather<T>(const JArray<T>&, int, const Datatype&,   \
                                   JArray<T>&) const;                        \
  template void Comm::allToAll<T>(const JArray<T>&, int, const Datatype&,    \
                                  JArray<T>&) const;

JHPC_OMPIJ_INSTANTIATE(minijvm::jbyte)
JHPC_OMPIJ_INSTANTIATE(minijvm::jboolean)
JHPC_OMPIJ_INSTANTIATE(minijvm::jchar)
JHPC_OMPIJ_INSTANTIATE(minijvm::jshort)
JHPC_OMPIJ_INSTANTIATE(minijvm::jint)
JHPC_OMPIJ_INSTANTIATE(minijvm::jlong)
JHPC_OMPIJ_INSTANTIATE(minijvm::jfloat)
JHPC_OMPIJ_INSTANTIATE(minijvm::jdouble)
#undef JHPC_OMPIJ_INSTANTIATE

}  // namespace jhpc::ompij
