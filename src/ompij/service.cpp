#include "jhpc/ompij/service.hpp"

#include <memory>

#include "jhpc/support/error.hpp"

namespace jhpc::ompij {

jhpcd::JobHandle Service::submit(const ServiceJobOptions& options,
                                 std::function<void(Env&)> rank_main) {
  JHPC_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  auto opts = std::make_shared<RunOptions>(options.run);
  auto body = std::make_shared<std::function<void(Env&)>>(std::move(rank_main));
  jhpcd::JobSpec spec;
  spec.name = options.name;
  spec.config = opts->universe_config();
  spec.job_class = options.job_class;
  spec.priority = options.priority;
  spec.quota = options.quota;
  spec.rank_main = [opts, body](minimpi::Comm& world) {
    Env env(world, *opts);
    (*body)(env);
  };
  return manager_.submit(std::move(spec));
}

}  // namespace jhpc::ompij
