// Native-level OMB benchmarks: the same measurement loops run directly on
// the minimpi substrate with malloc'd buffers — no JVM, no JNI, no
// bindings. This is the "native library" baseline of the paper's
// Figure 11 (Java-vs-native latency overhead) and of the collective
// algorithm ablation.
#include <algorithm>
#include <cstring>
#include <vector>

#include "jhpc/ombj/benchmarks.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/sizes.hpp"
#include "jhpc/support/stats.hpp"

namespace jhpc::ombj {
namespace {

constexpr int kPingTag = 1;
constexpr int kPongTag = 2;
constexpr int kAckTag = 3;

std::vector<std::size_t> byte_sizes(const BenchOptions& opt) {
  return size_sweep(opt.min_size == 0 ? 1 : opt.min_size, opt.max_size);
}

std::vector<std::size_t> float_sizes(const BenchOptions& opt) {
  return size_sweep(opt.min_size < 4 ? 4 : opt.min_size, opt.max_size);
}

double rank_average(const minimpi::Comm& world, double local) {
  double sum = 0.0;
  world.allreduce(&local, &sum, 1, minimpi::BasicKind::kDouble,
                  minimpi::ReduceOp::kSum);
  return sum / world.size();
}

template <typename OpFn>
std::vector<ResultRow> native_collective_loop(
    const minimpi::Comm& world, const BenchOptions& opt,
    const std::vector<std::size_t>& sizes, OpFn&& op) {
  std::vector<ResultRow> rows;
  for (const std::size_t size : sizes) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    double local_ns = 0.0;
    for (int i = 0; i < warmup + iters; ++i) {
      world.barrier();
      const auto t0 = world.vtime_ns();
      op(size);
      if (i >= warmup) local_ns += static_cast<double>(world.vtime_ns() - t0);
    }
    const double avg_us = rank_average(world, local_ns / iters / 1000.0);
    if (world.rank() == 0) rows.push_back({size, avg_us});
  }
  return rows;
}

}  // namespace

std::vector<ResultRow> run_latency_native(const minimpi::Comm& world,
                                          const BenchOptions& opt) {
  const int rank = world.rank();
  std::vector<std::byte> sbuf(opt.max_size), rbuf(opt.max_size);
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    world.barrier();
    if (rank == 0) {
      std::int64_t t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.vtime_ns();
        world.send(sbuf.data(), size, 1, kPingTag);
        world.recv(rbuf.data(), size, 1, kPongTag);
      }
      const auto elapsed = world.vtime_ns() - t0;
      rows.push_back(
          {size, static_cast<double>(elapsed) / (2.0 * iters * 1000.0)});
    } else if (rank == 1) {
      for (int i = 0; i < warmup + iters; ++i) {
        world.recv(rbuf.data(), size, 0, kPingTag);
        world.send(sbuf.data(), size, 0, kPongTag);
      }
    }
    world.barrier();
  }
  return rows;
}

std::vector<ResultRow> run_bandwidth_native(const minimpi::Comm& world,
                                            const BenchOptions& opt) {
  const int rank = world.rank();
  std::vector<std::byte> sbuf(opt.max_size), rbuf(opt.max_size);
  char ack = 0;
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    world.barrier();
    if (rank == 0) {
      std::int64_t t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.vtime_ns();
        std::vector<minimpi::Request> reqs;
        reqs.reserve(static_cast<std::size_t>(opt.window));
        for (int w = 0; w < opt.window; ++w)
          reqs.push_back(world.isend(sbuf.data(), size, 1, kPingTag));
        minimpi::Request::wait_all(reqs);
        world.recv(&ack, 1, 1, kAckTag);
      }
      const auto elapsed = world.vtime_ns() - t0;
      rows.push_back({size, bandwidth_mbps(static_cast<std::int64_t>(size) *
                                               opt.window * iters,
                                           elapsed)});
    } else if (rank == 1) {
      for (int i = 0; i < warmup + iters; ++i) {
        std::vector<minimpi::Request> reqs;
        reqs.reserve(static_cast<std::size_t>(opt.window));
        for (int w = 0; w < opt.window; ++w)
          reqs.push_back(world.irecv(rbuf.data(), size, 0, kPingTag));
        minimpi::Request::wait_all(reqs);
        world.send(&ack, 1, 0, kAckTag);
      }
    }
    world.barrier();
  }
  return rows;
}

std::vector<ResultRow> run_bcast_native(const minimpi::Comm& world,
                                        const BenchOptions& opt) {
  std::vector<std::byte> buf(opt.max_size);
  return native_collective_loop(world, opt, byte_sizes(opt),
                                [&](std::size_t s) {
                                  world.bcast(buf.data(), s, 0);
                                });
}

std::vector<ResultRow> run_allreduce_native(const minimpi::Comm& world,
                                            const BenchOptions& opt) {
  std::vector<float> sbuf(opt.max_size / 4), rbuf(opt.max_size / 4);
  return native_collective_loop(
      world, opt, float_sizes(opt), [&](std::size_t s) {
        world.allreduce(sbuf.data(), rbuf.data(), s / 4,
                        minimpi::BasicKind::kFloat, minimpi::ReduceOp::kSum);
      });
}

std::vector<ResultRow> run_reduce_native(const minimpi::Comm& world,
                                         const BenchOptions& opt) {
  std::vector<float> sbuf(opt.max_size / 4), rbuf(opt.max_size / 4);
  return native_collective_loop(
      world, opt, float_sizes(opt), [&](std::size_t s) {
        world.reduce(sbuf.data(), rbuf.data(), s / 4,
                     minimpi::BasicKind::kFloat, minimpi::ReduceOp::kSum, 0);
      });
}

std::vector<ResultRow> run_gather_native(const minimpi::Comm& world,
                                         const BenchOptions& opt) {
  std::vector<std::byte> sbuf(opt.max_size);
  std::vector<std::byte> rbuf(opt.max_size *
                              static_cast<std::size_t>(world.size()));
  return native_collective_loop(
      world, opt, byte_sizes(opt), [&](std::size_t s) {
        world.gather(sbuf.data(), s,
                     world.rank() == 0 ? rbuf.data() : nullptr, 0);
      });
}

std::vector<ResultRow> run_scatter_native(const minimpi::Comm& world,
                                          const BenchOptions& opt) {
  std::vector<std::byte> sbuf(opt.max_size *
                              static_cast<std::size_t>(world.size()));
  std::vector<std::byte> rbuf(opt.max_size);
  return native_collective_loop(
      world, opt, byte_sizes(opt), [&](std::size_t s) {
        world.scatter(world.rank() == 0 ? sbuf.data() : nullptr, s,
                      rbuf.data(), 0);
      });
}

std::vector<ResultRow> run_allgather_native(const minimpi::Comm& world,
                                            const BenchOptions& opt) {
  std::vector<std::byte> sbuf(opt.max_size);
  std::vector<std::byte> rbuf(opt.max_size *
                              static_cast<std::size_t>(world.size()));
  return native_collective_loop(world, opt, byte_sizes(opt),
                                [&](std::size_t s) {
                                  world.allgather(sbuf.data(), s,
                                                  rbuf.data());
                                });
}

std::vector<ResultRow> run_alltoall_native(const minimpi::Comm& world,
                                           const BenchOptions& opt) {
  std::vector<std::byte> sbuf(opt.max_size *
                              static_cast<std::size_t>(world.size()));
  std::vector<std::byte> rbuf(opt.max_size *
                              static_cast<std::size_t>(world.size()));
  return native_collective_loop(world, opt, byte_sizes(opt),
                                [&](std::size_t s) {
                                  world.alltoall(sbuf.data(), s,
                                                 rbuf.data());
                                });
}

namespace {

/// Native overlap loop (osu_ibcast / osu_iallreduce without the Java
/// layer); same virtual-time methodology as the bindings variant.
template <typename InitFn>
std::vector<ResultRow> native_overlap_loop(
    const minimpi::Comm& world, const BenchOptions& opt,
    const std::vector<std::size_t>& sizes, InitFn&& init) {
  std::vector<ResultRow> rows;
  volatile double sink = 0.0;
  const auto compute = [&sink](std::int64_t n) {
    for (std::int64_t k = 0; k < n; ++k) sink = sink + 1e-9 * k;
  };
  for (const std::size_t size : sizes) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);

    double pure_ns = 0.0;
    for (int i = 0; i < warmup + iters; ++i) {
      world.barrier();
      const auto t0 = world.vtime_ns();
      minimpi::Request req = init(size);
      req.wait();
      if (i >= warmup) pure_ns += static_cast<double>(world.vtime_ns() - t0);
    }
    const double t_pure = pure_ns / iters;

    std::int64_t spins = 1000;
    {
      const auto t0 = world.vtime_ns();
      compute(spins);
      const auto dt = std::max<std::int64_t>(world.vtime_ns() - t0, 1);
      spins = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(static_cast<double>(spins) * t_pure /
                                       static_cast<double>(dt)));
    }

    double compute_ns = 0.0;
    double total_ns = 0.0;
    for (int i = 0; i < warmup + iters; ++i) {
      world.barrier();
      const auto c0 = world.vtime_ns();
      compute(spins);
      const auto c1 = world.vtime_ns();
      world.barrier();
      const auto t0 = world.vtime_ns();
      minimpi::Request req = init(size);
      compute(spins);
      req.wait();
      const auto dt = world.vtime_ns() - t0;
      if (i >= warmup) {
        compute_ns += static_cast<double>(c1 - c0);
        total_ns += static_cast<double>(dt);
      }
    }
    const double t_compute = compute_ns / iters;
    const double t_total = total_ns / iters;

    double local_overlap =
        t_pure > 0.0 ? 100.0 * (1.0 - (t_total - t_compute) / t_pure) : 0.0;
    local_overlap = std::min(std::max(local_overlap, 0.0), 100.0);
    const double avg_us = rank_average(world, t_pure / 1000.0);
    const double avg_overlap = rank_average(world, local_overlap);
    if (world.rank() == 0) rows.push_back({size, avg_us, avg_overlap});
  }
  return rows;
}

}  // namespace

std::vector<ResultRow> run_ibcast_native(const minimpi::Comm& world,
                                         const BenchOptions& opt) {
  std::vector<std::byte> buf(opt.max_size);
  return native_overlap_loop(world, opt, byte_sizes(opt),
                             [&](std::size_t s) {
                               return world.ibcast(buf.data(), s, 0);
                             });
}

std::vector<ResultRow> run_iallreduce_native(const minimpi::Comm& world,
                                             const BenchOptions& opt) {
  std::vector<float> sbuf(opt.max_size / 4), rbuf(opt.max_size / 4);
  return native_overlap_loop(
      world, opt, float_sizes(opt), [&](std::size_t s) {
        return world.iallreduce(sbuf.data(), rbuf.data(), s / 4,
                                minimpi::BasicKind::kFloat,
                                minimpi::ReduceOp::kSum);
      });
}

std::vector<ResultRow> run_benchmark_native(BenchKind kind,
                                            const minimpi::Comm& world,
                                            const BenchOptions& opt) {
  if (opt.resilient) {
    switch (kind) {
      case BenchKind::kBcast: return run_bcast_resilient_native(world, opt);
      case BenchKind::kAllreduce:
        return run_allreduce_resilient_native(world, opt);
      default:
        throw UnsupportedOperationError(
            std::string("resilience mode (--kill-rank) supports bcast and "
                        "allreduce, not ") +
            bench_name(kind));
    }
  }
  switch (kind) {
    case BenchKind::kLatency: return run_latency_native(world, opt);
    case BenchKind::kBandwidth: return run_bandwidth_native(world, opt);
    case BenchKind::kBcast: return run_bcast_native(world, opt);
    case BenchKind::kReduce: return run_reduce_native(world, opt);
    case BenchKind::kAllreduce: return run_allreduce_native(world, opt);
    case BenchKind::kGather: return run_gather_native(world, opt);
    case BenchKind::kScatter: return run_scatter_native(world, opt);
    case BenchKind::kAllgather: return run_allgather_native(world, opt);
    case BenchKind::kAlltoall: return run_alltoall_native(world, opt);
    case BenchKind::kIbcast: return run_ibcast_native(world, opt);
    case BenchKind::kIallreduce: return run_iallreduce_native(world, opt);
    default:
      throw UnsupportedOperationError(
          std::string("native benchmark not implemented for ") +
          bench_name(kind));
  }
}

}  // namespace jhpc::ombj
