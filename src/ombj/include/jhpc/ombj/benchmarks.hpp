// OMB-J benchmark bodies.
//
// Each function runs inside one rank of an already-launched job and
// returns the per-size results (meaningful on rank 0; the collective
// benchmarks reduce the per-rank averages as OMB does). The templates are
// instantiated for both binding environments — mv2j::Env and ompij::Env —
// which implement the same Java API; the native variants bypass the Java
// layer entirely (Figure 11's baseline).
#pragma once

#include <vector>

#include "jhpc/minimpi/comm.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/ombj/options.hpp"
#include "jhpc/ompij/ompij.hpp"

namespace jhpc::ombj {

// --- Point-to-point (first two ranks; others idle at the barrier) ---------
template <typename EnvT>
std::vector<ResultRow> run_latency(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_bandwidth(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_bibandwidth(EnvT& env, const BenchOptions& opt);
/// osu_mbw_mr: all ranks pair up (i <-> i + size/2); aggregate MB/s.
template <typename EnvT>
std::vector<ResultRow> run_multi_bandwidth(EnvT& env,
                                           const BenchOptions& opt);
/// osu_multi_lat: all pairs ping-pong simultaneously; average latency.
template <typename EnvT>
std::vector<ResultRow> run_multi_latency(EnvT& env, const BenchOptions& opt);

// --- Blocking collectives (latency, averaged over ranks) -------------------
template <typename EnvT>
std::vector<ResultRow> run_bcast(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_reduce(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_allreduce(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_reduce_scatter(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_scan(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_gather(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_scatter(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_allgather(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_alltoall(EnvT& env, const BenchOptions& opt);

// --- Vectored blocking collectives ------------------------------------------
template <typename EnvT>
std::vector<ResultRow> run_gatherv(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_scatterv(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_allgatherv(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_alltoallv(EnvT& env, const BenchOptions& opt);

/// osu_barrier: one row (size 0, average barrier latency in us).
template <typename EnvT>
std::vector<ResultRow> run_barrier(EnvT& env, const BenchOptions& opt);

// --- Nonblocking collectives (osu_ibcast / osu_iallreduce) ------------------
// Rows carry both the pure (no-compute) latency in us and the measured
// communication/computation overlap percentage: per size, the pure
// init+wait latency t_pure is measured first, a dummy compute loop is
// calibrated to t_pure, and the overlapped pass times init;compute;wait
// as t_total, giving overlap = 100 * (1 - (t_total - t_compute)/t_pure).
template <typename EnvT>
std::vector<ResultRow> run_ibcast(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_iallreduce(EnvT& env, const BenchOptions& opt);

// --- One-sided (osu_put_latency / osu_get_bw) -------------------------------
// ByteBuffer API only: an array origin would stage a copy, which defeats
// the zero-copy transfer these benchmarks measure. put_latency times one
// passive-target lock/put/unlock round per iteration (unlock forces
// target completion); get_bw streams `window` gets per exclusive epoch.
template <typename EnvT>
std::vector<ResultRow> run_put_latency(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_get_bw(EnvT& env, const BenchOptions& opt);

// --- ULFM resilience mode (--kill-rank) -------------------------------------
// The sweep runs with ERRORS_RETURN on the world communicator while the
// fault plan kills ranks mid-run. Survivors catch RankFailedError /
// CommRevokedError, revoke + shrink, re-agree on the iteration index and
// continue on the shrunk communicator; rank 0 (which must not be killed)
// reports the per-size averages over the iterations that completed.
template <typename EnvT>
std::vector<ResultRow> run_bcast_resilient(EnvT& env, const BenchOptions& opt);
template <typename EnvT>
std::vector<ResultRow> run_allreduce_resilient(EnvT& env,
                                               const BenchOptions& opt);

/// Dispatch by kind.
template <typename EnvT>
std::vector<ResultRow> run_benchmark(BenchKind kind, EnvT& env,
                                     const BenchOptions& opt);

// --- Native (no Java layer) -----------------------------------------------
std::vector<ResultRow> run_latency_native(const minimpi::Comm& world,
                                          const BenchOptions& opt);
std::vector<ResultRow> run_bandwidth_native(const minimpi::Comm& world,
                                            const BenchOptions& opt);
std::vector<ResultRow> run_bcast_native(const minimpi::Comm& world,
                                        const BenchOptions& opt);
std::vector<ResultRow> run_allreduce_native(const minimpi::Comm& world,
                                            const BenchOptions& opt);
std::vector<ResultRow> run_reduce_native(const minimpi::Comm& world,
                                         const BenchOptions& opt);
std::vector<ResultRow> run_gather_native(const minimpi::Comm& world,
                                         const BenchOptions& opt);
std::vector<ResultRow> run_scatter_native(const minimpi::Comm& world,
                                          const BenchOptions& opt);
std::vector<ResultRow> run_allgather_native(const minimpi::Comm& world,
                                            const BenchOptions& opt);
std::vector<ResultRow> run_alltoall_native(const minimpi::Comm& world,
                                           const BenchOptions& opt);
std::vector<ResultRow> run_bcast_resilient_native(const minimpi::Comm& world,
                                                  const BenchOptions& opt);
std::vector<ResultRow> run_allreduce_resilient_native(
    const minimpi::Comm& world, const BenchOptions& opt);
std::vector<ResultRow> run_ibcast_native(const minimpi::Comm& world,
                                         const BenchOptions& opt);
std::vector<ResultRow> run_iallreduce_native(const minimpi::Comm& world,
                                             const BenchOptions& opt);
std::vector<ResultRow> run_benchmark_native(BenchKind kind,
                                            const minimpi::Comm& world,
                                            const BenchOptions& opt);

}  // namespace jhpc::ombj
