// The figure harness: runs one benchmark kind across several
// library/API series — each series as its own job on a fresh virtual
// cluster — and merges the per-size results into one OMB-style table.
// Every fig*_ binary in bench/ is a thin FigureSpec around this.
#pragma once

#include <string>
#include <vector>

#include "jhpc/netsim/fabric.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/ombj/options.hpp"
#include "jhpc/support/table.hpp"

namespace jhpc::ombj {

/// One plotted line of a paper figure.
struct SeriesSpec {
  Library library;
  Api api;
  std::string label;  ///< column header; defaults to "<lib> <api>" if empty
  /// Collective-engine override for this series: "mv2", "basic" or
  /// "hier" (empty = the library's own default suite). Lets one figure
  /// compare engines on the same library, e.g. the hier crossover
  /// ablation.
  std::string coll;
};

/// One paper figure (or ablation) to regenerate.
struct FigureSpec {
  std::string id;            ///< e.g. "fig05"
  std::string title;         ///< human description printed above the table
  BenchKind kind = BenchKind::kLatency;
  BenchOptions options{};
  int ranks = 2;
  /// Ranks per virtual node (0 = all on one node, the intra-node setup).
  int ppn = 0;
  netsim::FabricConfig fabric{};  ///< latency/bandwidth knobs (ppn is set
                                  ///< from `ppn` above)
  std::vector<SeriesSpec> series;
  /// (baseline label, candidate label) pairs; figure_main prints the
  /// geometric-mean baseline/candidate ratio for each — the paper's
  /// "factor of N on average over all message sizes".
  std::vector<std::pair<std::string, std::string>> ratios;
  /// Observability for every series' job (--pvars / --trace flags, or the
  /// JHPC_PVARS / JHPC_TRACE env). Multi-series figures tag the trace
  /// path per series ("out.json" -> "out.mv2j_buffer.json").
  obs::ObsConfig obs = obs::ObsConfig::from_env();
  /// Figure-wide collective-engine override (`--coll mv2|basic|hier`);
  /// a series' own `coll` wins over this.
  std::string coll;
};

/// Run one series in a fresh job; never throws for unsupported
/// combinations (reports them in the result instead).
SeriesResult run_series(const FigureSpec& fig, const SeriesSpec& series);

/// Run all series and merge rows by message size.
std::vector<SeriesResult> run_figure(const FigureSpec& fig);

/// Render merged results as an OMB-style table (first column: size).
Table figure_table(const FigureSpec& fig,
                   const std::vector<SeriesResult>& results);

/// Geometric-mean ratio between two series (baseline / candidate per
/// size), the paper's "factor of N on average over all message sizes".
/// Returns 0 when either series is missing/unsupported.
double average_ratio(const std::vector<SeriesResult>& results,
                     const std::string& baseline_label,
                     const std::string& candidate_label);

/// Standard entry point for the bench/fig*_ binaries: parse common flags
/// (--ranks, --ppn, --min, --max, --iters, --csv, --quick), apply them to
/// the spec, run, print, optionally write CSV. Returns the process exit
/// code.
int figure_main(FigureSpec fig, int argc, char** argv);

}  // namespace jhpc::ombj
