// OMB-J option and result types.
//
// OMB-J is this repository's port of the OSU Micro-Benchmarks to the Java
// bindings (paper Section V): point-to-point latency / bandwidth /
// bi-bandwidth, blocking collectives, vectored collectives, each runnable
// over the ByteBuffer API or the Java-array API, with optional data
// validation (the Figure 18 mode where populate+verify time is included).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace jhpc::ombj {

/// Which user-facing API a benchmark exercises.
enum class Api { kBuffer, kArrays };

/// Which library stack runs the benchmark.
enum class Library {
  kMv2j,       ///< MVAPICH2-J bindings (mv2 native suite)
  kOmpij,      ///< Open MPI-J baseline (basic native suite)
  kNativeMv2,  ///< native minimpi, mv2 suite (no Java layer) — Figure 11
  kNativeOmpi, ///< native minimpi, basic suite
};

const char* library_name(Library lib);
const char* api_name(Api api);

/// Benchmark kinds (the OMB binaries).
enum class BenchKind {
  kLatency,    // osu_latency
  kBandwidth,  // osu_bw
  kBiBandwidth,// osu_bibw
  kMultiBw,    // osu_mbw_mr (multi-pair bandwidth / message rate)
  kMultiLat,   // osu_multi_lat (multi-pair latency)
  kBcast,      // osu_bcast
  kReduce,     // osu_reduce
  kAllreduce,  // osu_allreduce
  kReduceScatter,  // osu_reduce_scatter (block variant)
  kScan,       // prefix reduction (no OMB analogue; completeness)
  kGather,     // osu_gather
  kScatter,    // osu_scatter
  kAllgather,  // osu_allgather
  kAlltoall,   // osu_alltoall
  kGatherv,    // osu_gatherv
  kScatterv,   // osu_scatterv
  kAllgatherv, // osu_allgatherv
  kAlltoallv,  // osu_alltoallv
  kBarrier,    // osu_barrier (single row)
  kIbcast,     // osu_ibcast (nonblocking; latency + overlap %)
  kIallreduce, // osu_iallreduce (nonblocking; latency + overlap %)
  kPutLatency, // osu_put_latency (one-sided; passive-target lock/unlock)
  kGetBandwidth, // osu_get_bw (one-sided; windowed gets per epoch)
};

const char* bench_name(BenchKind kind);
BenchKind bench_from_name(const std::string& name);

/// Sweep and iteration parameters (OMB flag equivalents, scaled to a
/// single-core simulation box).
struct BenchOptions {
  std::size_t min_size = 1;
  std::size_t max_size = 1 << 22;  // 4 MB, the OMB default
  int warmup_small = 20;
  int iters_small = 200;
  int warmup_large = 5;
  int iters_large = 30;
  /// Sizes strictly above this use the *_large iteration counts.
  std::size_t large_threshold = 8192;
  /// Window size for the bandwidth benchmarks (osu_bw default 64).
  int window = 64;
  /// Include populate + verify inside the timed region (osu_latency -c;
  /// the paper's Section VI-F experiment).
  bool validate = false;
  /// ULFM recovery mode (--kill-rank): run under ERRORS_RETURN and, when
  /// a scheduled rank death surfaces as RankFailedError/CommRevokedError,
  /// revoke + shrink and continue the sweep on the shrunk communicator.
  /// Only the size-independent collectives (bcast, allreduce) support it.
  bool resilient = false;
  Api api = Api::kBuffer;

  int iterations_for(std::size_t size) const {
    return size > large_threshold ? iters_large : iters_small;
  }
  int warmup_for(std::size_t size) const {
    return size > large_threshold ? warmup_large : warmup_small;
  }
};

/// One table row: message size plus the metric (latency in us, or
/// bandwidth in MB/s). The nonblocking benchmarks additionally report
/// the communication/computation overlap percentage (OSU methodology);
/// -1 means "not an overlap benchmark".
struct ResultRow {
  std::size_t size = 0;
  double value = 0.0;
  double overlap = -1.0;
};

/// A complete series: what ran and its rows (rank 0's view).
struct SeriesResult {
  std::string label;
  bool supported = true;   ///< false: the library rejected the combination
  std::string error;       ///< why, when unsupported
  std::vector<ResultRow> rows;
};

}  // namespace jhpc::ombj
