// OMB-J benchmark bodies (see benchmarks.hpp).
#include "jhpc/ombj/benchmarks.hpp"

#include "jhpc/mv2j/win.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "jhpc/support/clock.hpp"  // vtime via Comm::vtime_ns
#include "jhpc/support/error.hpp"
#include "jhpc/support/sizes.hpp"
#include "jhpc/support/stats.hpp"

namespace jhpc::ombj {

using minijvm::jbyte;
using minijvm::jfloat;
using mv2j::BYTE;
using mv2j::FLOAT;
using mv2j::SUM;

namespace {

constexpr int kPingTag = 1;
constexpr int kPongTag = 2;
constexpr int kAckTag = 3;

/// Sizes for a byte-payload sweep.
std::vector<std::size_t> byte_sizes(const BenchOptions& opt) {
  auto sizes = size_sweep(opt.min_size == 0 ? 1 : opt.min_size, opt.max_size);
  return sizes;
}

/// Sizes for a float-payload sweep (reductions): multiples of 4 only.
std::vector<std::size_t> float_sizes(const BenchOptions& opt) {
  auto sizes =
      size_sweep(opt.min_size < 4 ? 4 : opt.min_size, opt.max_size);
  return sizes;
}

// Deterministic per-iteration payload byte.
jbyte expected_byte(std::size_t j, int iteration) {
  return static_cast<jbyte>((j + static_cast<std::size_t>(iteration)) & 0x7f);
}

// Populate/verify helpers for the validation mode (Figure 18): element-
// wise access through each API's natural accessors — the very thing the
// experiment measures.
void fill(minijvm::ByteBuffer& b, std::size_t n, int iteration) {
  for (std::size_t j = 0; j < n; ++j) b.put(j, expected_byte(j, iteration));
}
void fill(minijvm::JArray<jbyte>& a, std::size_t n, int iteration) {
  for (std::size_t j = 0; j < n; ++j) a[j] = expected_byte(j, iteration);
}
void verify(const minijvm::ByteBuffer& b, std::size_t n, int iteration) {
  for (std::size_t j = 0; j < n; ++j) {
    if (b.get(j) != expected_byte(j, iteration))
      throw jhpc::Error("validation failed at byte " + std::to_string(j));
  }
}
void verify(const minijvm::JArray<jbyte>& a, std::size_t n, int iteration) {
  for (std::size_t j = 0; j < n; ++j) {
    if (a[j] != expected_byte(j, iteration))
      throw jhpc::Error("validation failed at byte " + std::to_string(j));
  }
}

/// Average a per-rank value across the communicator (untimed; OMB uses
/// MPI_Reduce for exactly this).
template <typename EnvT>
double rank_average(EnvT& env, double local) {
  double sum = 0.0;
  env.COMM_WORLD().native().allreduce(&local, &sum, 1,
                                      minimpi::BasicKind::kDouble,
                                      minimpi::ReduceOp::kSum);
  return sum / env.COMM_WORLD().getSize();
}

/// Generic ping-pong latency over any (sendable, recvable) pair of
/// payload handles.
template <typename EnvT, typename Payload>
std::vector<ResultRow> latency_loop(EnvT& env, const BenchOptions& opt,
                                    Payload& sbuf, Payload& rbuf) {
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    if (rank == 0) {
      std::int64_t t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.native().vtime_ns();
        if (opt.validate) fill(sbuf, size, i);
        world.send(sbuf, count, BYTE, 1, kPingTag);
        world.recv(rbuf, count, BYTE, 1, kPongTag);
        if (opt.validate) verify(rbuf, size, i);
      }
      const auto elapsed = world.native().vtime_ns() - t0;
      rows.push_back(
          {size, static_cast<double>(elapsed) / (2.0 * iters * 1000.0)});
    } else if (rank == 1) {
      for (int i = 0; i < warmup + iters; ++i) {
        world.recv(rbuf, count, BYTE, 0, kPingTag);
        if (opt.validate) {
          verify(rbuf, size, i);
          fill(sbuf, size, i);
        }
        world.send(sbuf, count, BYTE, 0, kPongTag);
      }
    }
    world.barrier();
  }
  return rows;
}

/// Windowed unidirectional bandwidth (osu_bw).
template <typename EnvT, typename Payload>
std::vector<ResultRow> bandwidth_loop(EnvT& env, const BenchOptions& opt,
                                      Payload& sbuf, Payload& rbuf,
                                      Payload& ack) {
  using RequestT = mv2j::Request;
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    if (rank == 0) {
      std::int64_t t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.native().vtime_ns();
        std::vector<RequestT> reqs;
        reqs.reserve(static_cast<std::size_t>(opt.window));
        for (int w = 0; w < opt.window; ++w)
          reqs.push_back(world.iSend(sbuf, count, BYTE, 1, kPingTag));
        RequestT::waitAll(reqs);
        world.recv(ack, 1, BYTE, 1, kAckTag);
      }
      const auto elapsed = world.native().vtime_ns() - t0;
      const auto total_bytes = static_cast<std::int64_t>(size) *
                               opt.window * iters;
      rows.push_back({size, bandwidth_mbps(total_bytes, elapsed)});
    } else if (rank == 1) {
      for (int i = 0; i < warmup + iters; ++i) {
        std::vector<RequestT> reqs;
        reqs.reserve(static_cast<std::size_t>(opt.window));
        for (int w = 0; w < opt.window; ++w)
          reqs.push_back(world.iRecv(rbuf, count, BYTE, 0, kPingTag));
        RequestT::waitAll(reqs);
        world.send(ack, 1, BYTE, 0, kAckTag);
      }
    }
    world.barrier();
  }
  return rows;
}

/// Bidirectional bandwidth (osu_bibw): both ranks stream simultaneously.
template <typename EnvT, typename Payload>
std::vector<ResultRow> bibandwidth_loop(EnvT& env, const BenchOptions& opt,
                                        Payload& sbuf, Payload& rbuf,
                                        Payload& ack) {
  using RequestT = mv2j::Request;
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    if (rank > 1) {
      for (int b = 0; b < 2; ++b) world.barrier();
      continue;
    }
    const int peer = 1 - rank;
    std::int64_t t0 = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) t0 = world.native().vtime_ns();
      std::vector<RequestT> reqs;
      reqs.reserve(static_cast<std::size_t>(2 * opt.window));
      for (int w = 0; w < opt.window; ++w)
        reqs.push_back(world.iRecv(rbuf, count, BYTE, peer, kPingTag));
      for (int w = 0; w < opt.window; ++w)
        reqs.push_back(world.iSend(sbuf, count, BYTE, peer, kPingTag));
      RequestT::waitAll(reqs);
      // Handshake so windows stay aligned.
      if (rank == 0) {
        world.recv(ack, 1, BYTE, 1, kAckTag);
      } else {
        world.send(ack, 1, BYTE, 0, kAckTag);
      }
    }
    if (rank == 0) {
      const auto elapsed = world.native().vtime_ns() - t0;
      const auto total_bytes =
          2 * static_cast<std::int64_t>(size) * opt.window * iters;
      rows.push_back({size, bandwidth_mbps(total_bytes, elapsed)});
    }
    world.barrier();
    world.barrier();  // mirror the idle ranks' extra barrier
  }
  return rows;
}

/// Collective latency loop: `op(count_bytes)` runs the collective once.
template <typename EnvT, typename OpFn>
std::vector<ResultRow> collective_loop(EnvT& env, const BenchOptions& opt,
                                       const std::vector<std::size_t>& sizes,
                                       OpFn&& op) {
  auto& world = env.COMM_WORLD();
  std::vector<ResultRow> rows;
  for (const std::size_t size : sizes) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    double local_ns = 0.0;
    for (int i = 0; i < warmup + iters; ++i) {
      world.barrier();
      const auto t0 = world.native().vtime_ns();
      op(size);
      const auto dt = world.native().vtime_ns() - t0;
      if (i >= warmup) local_ns += static_cast<double>(dt);
    }
    const double avg_us = rank_average(env, local_ns / iters / 1000.0);
    if (world.getRank() == 0) rows.push_back({size, avg_us});
  }
  return rows;
}

}  // namespace

// --- Point-to-point -----------------------------------------------------------

template <typename EnvT>
std::vector<ResultRow> run_latency(EnvT& env, const BenchOptions& opt) {
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return latency_loop(env, opt, sbuf, rbuf);
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  return latency_loop(env, opt, sarr, rarr);
}

template <typename EnvT>
std::vector<ResultRow> run_bandwidth(EnvT& env, const BenchOptions& opt) {
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    auto ack = env.newDirectBuffer(4);
    return bandwidth_loop(env, opt, sbuf, rbuf, ack);
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  auto ack = env.template newArray<jbyte>(4);
  return bandwidth_loop(env, opt, sarr, rarr, ack);
}

template <typename EnvT>
std::vector<ResultRow> run_bibandwidth(EnvT& env, const BenchOptions& opt) {
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    auto ack = env.newDirectBuffer(4);
    return bibandwidth_loop(env, opt, sbuf, rbuf, ack);
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  auto ack = env.template newArray<jbyte>(4);
  return bibandwidth_loop(env, opt, sarr, rarr, ack);
}

namespace {

/// osu_mbw_mr body: the first half of the ranks stream windows at their
/// partner in the second half; aggregate bandwidth is total bytes over
/// the slowest pair's (virtual) elapsed time.
template <typename EnvT, typename Payload>
std::vector<ResultRow> multi_bandwidth_loop(EnvT& env,
                                            const BenchOptions& opt,
                                            Payload& sbuf, Payload& rbuf,
                                            Payload& ack) {
  using RequestT = mv2j::Request;
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  const int pairs = world.getSize() / 2;
  JHPC_REQUIRE(pairs >= 1, "osu_mbw_mr needs at least 2 ranks");
  const bool is_sender = rank < pairs;
  const int peer = is_sender ? rank + pairs : rank - pairs;
  const bool active = rank < 2 * pairs;

  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    std::int64_t t0 = 0;
    if (active) {
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.native().vtime_ns();
        std::vector<RequestT> reqs;
        reqs.reserve(static_cast<std::size_t>(opt.window));
        if (is_sender) {
          for (int w = 0; w < opt.window; ++w)
            reqs.push_back(world.iSend(sbuf, count, BYTE, peer, kPingTag));
          RequestT::waitAll(reqs);
          world.recv(ack, 1, BYTE, peer, kAckTag);
        } else {
          for (int w = 0; w < opt.window; ++w)
            reqs.push_back(world.iRecv(rbuf, count, BYTE, peer, kPingTag));
          RequestT::waitAll(reqs);
          world.send(ack, 1, BYTE, peer, kAckTag);
        }
      }
    }
    // Slowest pair limits the aggregate (max over the senders' elapsed).
    double local_elapsed =
        is_sender && active
            ? static_cast<double>(world.native().vtime_ns() - t0)
            : 0.0;
    double max_elapsed = 0.0;
    world.native().allreduce(&local_elapsed, &max_elapsed, 1,
                             minimpi::BasicKind::kDouble,
                             minimpi::ReduceOp::kMax);
    if (rank == 0) {
      const auto total_bytes = static_cast<std::int64_t>(size) *
                               opt.window * iters * pairs;
      rows.push_back({size, bandwidth_mbps(total_bytes,
                                           static_cast<std::int64_t>(
                                               max_elapsed))});
    }
    world.barrier();
  }
  return rows;
}

}  // namespace

template <typename EnvT>
std::vector<ResultRow> run_multi_bandwidth(EnvT& env,
                                           const BenchOptions& opt) {
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    auto ack = env.newDirectBuffer(4);
    return multi_bandwidth_loop(env, opt, sbuf, rbuf, ack);
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  auto ack = env.template newArray<jbyte>(4);
  return multi_bandwidth_loop(env, opt, sarr, rarr, ack);
}

namespace {

/// osu_multi_lat body: every pair (r, r+pairs) ping-pongs simultaneously;
/// the reported latency is the average over pairs.
template <typename EnvT, typename Payload>
std::vector<ResultRow> multi_latency_loop(EnvT& env, const BenchOptions& opt,
                                          Payload& sbuf, Payload& rbuf) {
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  const int pairs = world.getSize() / 2;
  JHPC_REQUIRE(pairs >= 1, "osu_multi_lat needs at least 2 ranks");
  const bool is_initiator = rank < pairs;
  const int peer = is_initiator ? rank + pairs : rank - pairs;
  const bool active = rank < 2 * pairs;

  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    std::int64_t t0 = 0;
    if (active) {
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.native().vtime_ns();
        if (is_initiator) {
          world.send(sbuf, count, BYTE, peer, kPingTag);
          world.recv(rbuf, count, BYTE, peer, kPongTag);
        } else {
          world.recv(rbuf, count, BYTE, peer, kPingTag);
          world.send(sbuf, count, BYTE, peer, kPongTag);
        }
      }
    }
    double local_us =
        is_initiator && active
            ? static_cast<double>(world.native().vtime_ns() - t0) /
                  (2.0 * iters * 1000.0)
            : 0.0;
    double sum_us = 0.0;
    world.native().allreduce(&local_us, &sum_us, 1,
                             minimpi::BasicKind::kDouble,
                             minimpi::ReduceOp::kSum);
    if (rank == 0) rows.push_back({size, sum_us / pairs});
    world.barrier();
  }
  return rows;
}

}  // namespace

template <typename EnvT>
std::vector<ResultRow> run_multi_latency(EnvT& env, const BenchOptions& opt) {
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return multi_latency_loop(env, opt, sbuf, rbuf);
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  return multi_latency_loop(env, opt, sarr, rarr);
}

// --- Collectives ---------------------------------------------------------------

template <typename EnvT>
std::vector<ResultRow> run_bcast(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  if (opt.api == Api::kBuffer) {
    auto buf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      world.bcast(buf, static_cast<int>(s), BYTE, 0);
    });
  }
  auto arr = env.template newArray<jbyte>(opt.max_size);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    world.bcast(arr, static_cast<int>(s), BYTE, 0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_reduce(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const std::size_t max_count = opt.max_size / sizeof(jfloat);
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
      world.reduce(sbuf, rbuf, static_cast<int>(s / sizeof(jfloat)), FLOAT,
                   SUM, 0);
    });
  }
  auto sarr = env.template newArray<jfloat>(max_count);
  auto rarr = env.template newArray<jfloat>(max_count);
  return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
    world.reduce(sarr, rarr, static_cast<int>(s / sizeof(jfloat)), FLOAT,
                 SUM, 0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_allreduce(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const std::size_t max_count = opt.max_size / sizeof(jfloat);
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
      world.allReduce(sbuf, rbuf, static_cast<int>(s / sizeof(jfloat)),
                      FLOAT, SUM);
    });
  }
  auto sarr = env.template newArray<jfloat>(max_count);
  auto rarr = env.template newArray<jfloat>(max_count);
  return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
    world.allReduce(sarr, rarr, static_cast<int>(s / sizeof(jfloat)), FLOAT,
                    SUM);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_reduce_scatter(EnvT& env,
                                          const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  const std::size_t max_count = opt.max_size / sizeof(jfloat);
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size * n);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
      world.reduceScatterBlock(sbuf, rbuf,
                               static_cast<int>(s / sizeof(jfloat)), FLOAT,
                               SUM);
    });
  }
  auto sarr = env.template newArray<jfloat>(max_count * n);
  auto rarr = env.template newArray<jfloat>(max_count);
  return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
    world.reduceScatterBlock(sarr, rarr,
                             static_cast<int>(s / sizeof(jfloat)), FLOAT,
                             SUM);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_scan(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const std::size_t max_count = opt.max_size / sizeof(jfloat);
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
      world.scan(sbuf, rbuf, static_cast<int>(s / sizeof(jfloat)), FLOAT,
                 SUM);
    });
  }
  auto sarr = env.template newArray<jfloat>(max_count);
  auto rarr = env.template newArray<jfloat>(max_count);
  return collective_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
    world.scan(sarr, rarr, static_cast<int>(s / sizeof(jfloat)), FLOAT, SUM);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_gather(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size * n);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      world.gather(sbuf, static_cast<int>(s), BYTE, rbuf, 0);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size * n);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    world.gather(sarr, static_cast<int>(s), BYTE, rarr, 0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_scatter(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size * n);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      world.scatter(sbuf, static_cast<int>(s), BYTE, rbuf, 0);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size * n);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    world.scatter(sarr, static_cast<int>(s), BYTE, rarr, 0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_allgather(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size * n);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      world.allGather(sbuf, static_cast<int>(s), BYTE, rbuf);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size * n);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    world.allGather(sarr, static_cast<int>(s), BYTE, rarr);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_alltoall(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size * n);
    auto rbuf = env.newDirectBuffer(opt.max_size * n);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      world.allToAll(sbuf, static_cast<int>(s), BYTE, rbuf);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size * n);
  auto rarr = env.template newArray<jbyte>(opt.max_size * n);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    world.allToAll(sarr, static_cast<int>(s), BYTE, rarr);
  });
}

// --- Vectored collectives --------------------------------------------------------

namespace {
/// Equal per-rank counts/displacements in elements for the v-variants
/// (OMB's vectored benchmarks use uniform counts; the v-API is the
/// subject, not irregularity).
struct VectorLayout {
  std::vector<int> counts;
  std::vector<int> displs;
};
VectorLayout uniform_layout(int ranks, std::size_t count) {
  VectorLayout l;
  for (int r = 0; r < ranks; ++r) {
    l.counts.push_back(static_cast<int>(count));
    l.displs.push_back(static_cast<int>(count) * r);
  }
  return l;
}
}  // namespace

template <typename EnvT>
std::vector<ResultRow> run_gatherv(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size * n);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      const auto l = uniform_layout(world.getSize(), s);
      world.gatherv(sbuf, static_cast<int>(s), BYTE, rbuf, l.counts,
                    l.displs, 0);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size * n);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    const auto l = uniform_layout(world.getSize(), s);
    world.gatherv(sarr, static_cast<int>(s), BYTE, rarr, l.counts, l.displs,
                  0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_scatterv(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size * n);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      const auto l = uniform_layout(world.getSize(), s);
      world.scatterv(sbuf, l.counts, l.displs, BYTE, rbuf,
                     static_cast<int>(s), 0);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size * n);
  auto rarr = env.template newArray<jbyte>(opt.max_size);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    const auto l = uniform_layout(world.getSize(), s);
    world.scatterv(sarr, l.counts, l.displs, BYTE, rarr,
                   static_cast<int>(s), 0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_allgatherv(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size * n);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      const auto l = uniform_layout(world.getSize(), s);
      world.allGatherv(sbuf, static_cast<int>(s), BYTE, rbuf, l.counts,
                       l.displs);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size);
  auto rarr = env.template newArray<jbyte>(opt.max_size * n);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    const auto l = uniform_layout(world.getSize(), s);
    world.allGatherv(sarr, static_cast<int>(s), BYTE, rarr, l.counts,
                     l.displs);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_alltoallv(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const auto n = static_cast<std::size_t>(world.getSize());
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size * n);
    auto rbuf = env.newDirectBuffer(opt.max_size * n);
    return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
      const auto l = uniform_layout(world.getSize(), s);
      world.allToAllv(sbuf, l.counts, l.displs, BYTE, rbuf, l.counts,
                      l.displs);
    });
  }
  auto sarr = env.template newArray<jbyte>(opt.max_size * n);
  auto rarr = env.template newArray<jbyte>(opt.max_size * n);
  return collective_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    const auto l = uniform_layout(world.getSize(), s);
    world.allToAllv(sarr, l.counts, l.displs, BYTE, rarr, l.counts,
                    l.displs);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_barrier(EnvT& env, const BenchOptions& opt) {
  auto& world = env.COMM_WORLD();
  const int iters = opt.iters_small;
  const int warmup = opt.warmup_small;
  double local_ns = 0.0;
  for (int i = 0; i < warmup + iters; ++i) {
    const auto t0 = world.native().vtime_ns();
    world.barrier();
    if (i >= warmup) local_ns += static_cast<double>(world.native().vtime_ns() - t0);
  }
  const double avg_us = rank_average(env, local_ns / iters / 1000.0);
  std::vector<ResultRow> rows;
  if (world.getRank() == 0) rows.push_back({0, avg_us});
  return rows;
}

// --- Nonblocking collectives (overlap benchmarks) -------------------------------

namespace {

/// Shared body for osu_ibcast / osu_iallreduce. `init(size)` posts the
/// nonblocking operation and returns the bindings Request. All timing is
/// in virtual time: vtime_ns() charges elapsed CPU, so the dummy compute
/// loop shows up on the virtual clock at its real cost while the
/// schedule's communication progresses underneath it.
template <typename EnvT, typename InitFn>
std::vector<ResultRow> overlap_loop(EnvT& env, const BenchOptions& opt,
                                    const std::vector<std::size_t>& sizes,
                                    InitFn&& init) {
  auto& world = env.COMM_WORLD();
  std::vector<ResultRow> rows;
  volatile double sink = 0.0;
  const auto compute = [&sink](std::int64_t n) {
    for (std::int64_t k = 0; k < n; ++k) sink = sink + 1e-9 * k;
  };
  for (const std::size_t size : sizes) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);

    // Pass 1: pure latency — init immediately followed by wait.
    double pure_ns = 0.0;
    for (int i = 0; i < warmup + iters; ++i) {
      world.barrier();
      const auto t0 = world.native().vtime_ns();
      auto req = init(size);
      req.waitFor();
      const auto dt = world.native().vtime_ns() - t0;
      if (i >= warmup) pure_ns += static_cast<double>(dt);
    }
    const double t_pure = pure_ns / iters;

    // Calibrate the compute loop to roughly t_pure of virtual time.
    std::int64_t spins = 1000;
    {
      const auto t0 = world.native().vtime_ns();
      compute(spins);
      const auto dt =
          std::max<std::int64_t>(world.native().vtime_ns() - t0, 1);
      spins = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(static_cast<double>(spins) * t_pure /
                                       static_cast<double>(dt)));
    }

    // Pass 2: the calibrated compute alone, then init;compute;wait.
    double compute_ns = 0.0;
    double total_ns = 0.0;
    for (int i = 0; i < warmup + iters; ++i) {
      world.barrier();
      const auto c0 = world.native().vtime_ns();
      compute(spins);
      const auto c1 = world.native().vtime_ns();
      world.barrier();
      const auto t0 = world.native().vtime_ns();
      auto req = init(size);
      compute(spins);
      req.waitFor();
      const auto dt = world.native().vtime_ns() - t0;
      if (i >= warmup) {
        compute_ns += static_cast<double>(c1 - c0);
        total_ns += static_cast<double>(dt);
      }
    }
    const double t_compute = compute_ns / iters;
    const double t_total = total_ns / iters;

    // OSU overlap: the fraction of the pure communication time hidden
    // behind the compute, clamped to [0, 100].
    double local_overlap =
        t_pure > 0.0
            ? 100.0 * (1.0 - (t_total - t_compute) / t_pure)
            : 0.0;
    local_overlap = std::min(std::max(local_overlap, 0.0), 100.0);
    const double avg_us = rank_average(env, t_pure / 1000.0);
    const double avg_overlap = rank_average(env, local_overlap);
    if (world.getRank() == 0) rows.push_back({size, avg_us, avg_overlap});
  }
  return rows;
}

}  // namespace

template <typename EnvT>
std::vector<ResultRow> run_ibcast(EnvT& env, const BenchOptions& opt) {
  if (opt.api != Api::kBuffer) {
    throw UnsupportedOperationError(
        "nonblocking collectives are ByteBuffer-only");
  }
  auto& world = env.COMM_WORLD();
  auto buf = env.newDirectBuffer(opt.max_size);
  return overlap_loop(env, opt, byte_sizes(opt), [&](std::size_t s) {
    return world.iBcast(buf, static_cast<int>(s), BYTE, 0);
  });
}

template <typename EnvT>
std::vector<ResultRow> run_iallreduce(EnvT& env, const BenchOptions& opt) {
  if (opt.api != Api::kBuffer) {
    throw UnsupportedOperationError(
        "nonblocking collectives are ByteBuffer-only");
  }
  auto& world = env.COMM_WORLD();
  auto sbuf = env.newDirectBuffer(opt.max_size);
  auto rbuf = env.newDirectBuffer(opt.max_size);
  return overlap_loop(env, opt, float_sizes(opt), [&](std::size_t s) {
    return world.iAllReduce(sbuf, rbuf, static_cast<int>(s / sizeof(jfloat)),
                            FLOAT, SUM);
  });
}

// --- One-sided benchmarks (osu_put_latency / osu_get_bw) --------------------

template <typename EnvT>
std::vector<ResultRow> run_put_latency(EnvT& env, const BenchOptions& opt) {
  if (opt.api != Api::kBuffer) {
    throw UnsupportedOperationError(
        "one-sided benchmarks require the ByteBuffer API (an array origin "
        "would reintroduce the staging copy RMA avoids)");
  }
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  auto origin = env.newDirectBuffer(opt.max_size);
  auto win = world.winAllocate(opt.max_size);
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    if (rank == 0) {
      std::int64_t t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.native().vtime_ns();
        win.lock(minimpi::LockType::kExclusive, 1);
        win.put(origin, count, BYTE, 1, 0);
        win.unlock(1);  // forces origin AND target completion
      }
      const auto elapsed = world.native().vtime_ns() - t0;
      rows.push_back({size, static_cast<double>(elapsed) / (iters * 1000.0)});
    }
    world.barrier();
  }
  win.free();
  return rows;
}

template <typename EnvT>
std::vector<ResultRow> run_get_bw(EnvT& env, const BenchOptions& opt) {
  if (opt.api != Api::kBuffer) {
    throw UnsupportedOperationError(
        "one-sided benchmarks require the ByteBuffer API (an array origin "
        "would reintroduce the staging copy RMA avoids)");
  }
  auto& world = env.COMM_WORLD();
  const int rank = world.getRank();
  auto origin = env.newDirectBuffer(opt.max_size);
  auto win = world.winAllocate(opt.max_size);
  std::vector<ResultRow> rows;
  for (const std::size_t size : byte_sizes(opt)) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    const int count = static_cast<int>(size);
    world.barrier();
    if (rank == 0) {
      std::int64_t t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = world.native().vtime_ns();
        win.lock(minimpi::LockType::kShared, 1);
        for (int w = 0; w < opt.window; ++w)
          win.get(origin, count, BYTE, 1, 0);
        win.unlock(1);
      }
      const auto elapsed = world.native().vtime_ns() - t0;
      const auto total_bytes =
          static_cast<std::int64_t>(size) * opt.window * iters;
      rows.push_back({size, bandwidth_mbps(total_bytes, elapsed)});
    }
    world.barrier();
  }
  win.free();
  return rows;
}

template <typename EnvT>
std::vector<ResultRow> run_benchmark(BenchKind kind, EnvT& env,
                                     const BenchOptions& opt) {
  if (opt.resilient) {
    switch (kind) {
      case BenchKind::kBcast: return run_bcast_resilient(env, opt);
      case BenchKind::kAllreduce: return run_allreduce_resilient(env, opt);
      default:
        throw UnsupportedOperationError(
            std::string("resilience mode (--kill-rank) supports bcast and "
                        "allreduce, not ") +
            bench_name(kind));
    }
  }
  switch (kind) {
    case BenchKind::kLatency: return run_latency(env, opt);
    case BenchKind::kBandwidth: return run_bandwidth(env, opt);
    case BenchKind::kBiBandwidth: return run_bibandwidth(env, opt);
    case BenchKind::kMultiBw: return run_multi_bandwidth(env, opt);
    case BenchKind::kMultiLat: return run_multi_latency(env, opt);
    case BenchKind::kBcast: return run_bcast(env, opt);
    case BenchKind::kReduce: return run_reduce(env, opt);
    case BenchKind::kAllreduce: return run_allreduce(env, opt);
    case BenchKind::kReduceScatter: return run_reduce_scatter(env, opt);
    case BenchKind::kScan: return run_scan(env, opt);
    case BenchKind::kGather: return run_gather(env, opt);
    case BenchKind::kScatter: return run_scatter(env, opt);
    case BenchKind::kAllgather: return run_allgather(env, opt);
    case BenchKind::kAlltoall: return run_alltoall(env, opt);
    case BenchKind::kGatherv: return run_gatherv(env, opt);
    case BenchKind::kScatterv: return run_scatterv(env, opt);
    case BenchKind::kAllgatherv: return run_allgatherv(env, opt);
    case BenchKind::kAlltoallv: return run_alltoallv(env, opt);
    case BenchKind::kBarrier: return run_barrier(env, opt);
    case BenchKind::kIbcast: return run_ibcast(env, opt);
    case BenchKind::kIallreduce: return run_iallreduce(env, opt);
    case BenchKind::kPutLatency: return run_put_latency(env, opt);
    case BenchKind::kGetBandwidth: return run_get_bw(env, opt);
  }
  throw InternalError("unknown benchmark kind");
}

// --- Explicit instantiations for both binding environments -------------------

#define JHPC_OMBJ_INSTANTIATE(EnvT)                                          \
  template std::vector<ResultRow> run_latency<EnvT>(EnvT&,                   \
                                                    const BenchOptions&);    \
  template std::vector<ResultRow> run_bandwidth<EnvT>(EnvT&,                 \
                                                      const BenchOptions&);  \
  template std::vector<ResultRow> run_bibandwidth<EnvT>(                     \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_multi_bandwidth<EnvT>(                 \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_multi_latency<EnvT>(                   \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_reduce_scatter<EnvT>(                  \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_scan<EnvT>(EnvT&,                      \
                                                 const BenchOptions&);       \
  template std::vector<ResultRow> run_bcast<EnvT>(EnvT&,                     \
                                                  const BenchOptions&);      \
  template std::vector<ResultRow> run_reduce<EnvT>(EnvT&,                    \
                                                   const BenchOptions&);     \
  template std::vector<ResultRow> run_allreduce<EnvT>(EnvT&,                 \
                                                      const BenchOptions&);  \
  template std::vector<ResultRow> run_gather<EnvT>(EnvT&,                    \
                                                   const BenchOptions&);     \
  template std::vector<ResultRow> run_scatter<EnvT>(EnvT&,                   \
                                                    const BenchOptions&);    \
  template std::vector<ResultRow> run_allgather<EnvT>(EnvT&,                 \
                                                      const BenchOptions&);  \
  template std::vector<ResultRow> run_alltoall<EnvT>(EnvT&,                  \
                                                     const BenchOptions&);   \
  template std::vector<ResultRow> run_gatherv<EnvT>(EnvT&,                   \
                                                    const BenchOptions&);    \
  template std::vector<ResultRow> run_scatterv<EnvT>(EnvT&,                  \
                                                     const BenchOptions&);   \
  template std::vector<ResultRow> run_allgatherv<EnvT>(                      \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_alltoallv<EnvT>(EnvT&,                 \
                                                      const BenchOptions&);  \
  template std::vector<ResultRow> run_barrier<EnvT>(EnvT&,                   \
                                                    const BenchOptions&);    \
  template std::vector<ResultRow> run_ibcast<EnvT>(EnvT&,                    \
                                                   const BenchOptions&);     \
  template std::vector<ResultRow> run_iallreduce<EnvT>(                      \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_put_latency<EnvT>(                     \
      EnvT&, const BenchOptions&);                                           \
  template std::vector<ResultRow> run_get_bw<EnvT>(EnvT&,                    \
                                                   const BenchOptions&);     \
  template std::vector<ResultRow> run_benchmark<EnvT>(BenchKind, EnvT&,      \
                                                      const BenchOptions&);

JHPC_OMBJ_INSTANTIATE(mv2j::Env)
JHPC_OMBJ_INSTANTIATE(ompij::Env)
#undef JHPC_OMBJ_INSTANTIATE

}  // namespace jhpc::ombj
