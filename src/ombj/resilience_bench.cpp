// OMB-J resilience mode (--kill-rank): ULFM recovery demonstrated on the
// collective latency sweeps.
//
// The fault plan kills one or more ranks mid-run. The sweep runs with
// ERRORS_RETURN on the world communicator, so a death surfaces as
// RankFailedError (first observer; the collective auto-revokes) or
// CommRevokedError (everyone else) instead of aborting the job. The
// survivors shrink to a dense survivors-only communicator, re-agree on
// the loop position — the failure can surface one collective apart on
// different ranks — and continue the sweep. Rank 0 must be a survivor:
// it reports the per-size averages over the iterations that completed.
//
// Only the size-independent collectives (bcast, allreduce) run in this
// mode: their buffers do not scale with the communicator size, so the
// same payloads stay valid after a shrink.
#include <cstddef>
#include <vector>

#include "jhpc/ombj/benchmarks.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/sizes.hpp"

namespace jhpc::ombj {

using minijvm::jbyte;
using minijvm::jfloat;
using mv2j::BYTE;
using mv2j::FLOAT;
using mv2j::SUM;

namespace {

std::vector<std::size_t> byte_sizes(const BenchOptions& opt) {
  return size_sweep(opt.min_size == 0 ? 1 : opt.min_size, opt.max_size);
}

std::vector<std::size_t> float_sizes(const BenchOptions& opt) {
  return size_sweep(opt.min_size < 4 ? 4 : opt.min_size, opt.max_size);
}

/// Shrink to the survivors, then agree on the furthest loop position so
/// every survivor resumes at the same iteration (ranks can be one
/// collective apart when the failure surfaced). Loops in case another
/// rank dies during the recovery itself.
template <typename ShrinkFn, typename MaxFn>
void recover_loop(ShrinkFn&& shrink, MaxFn&& max_iter, int& i) {
  while (true) {
    try {
      shrink();
      i = max_iter(i);
      return;
    } catch (const minimpi::RankFailedError&) {
    } catch (const minimpi::CommRevokedError&) {
    }
  }
}

/// The resilient collective latency loop over the native substrate.
/// `op(comm, size)` runs the collective once on the current (possibly
/// shrunk) communicator.
template <typename OpFn>
std::vector<ResultRow> native_resilient_loop(
    const minimpi::Comm& world, const BenchOptions& opt,
    const std::vector<std::size_t>& sizes, OpFn&& op) {
  minimpi::Comm comm = world;
  comm.set_errhandler(minimpi::Errhandler::kErrorsReturn);
  const auto recover = [&comm](int& i) {
    recover_loop([&comm] { comm = comm.shrink(); },
                 [&comm](int i) {
                   int agreed = i;
                   comm.allreduce(&i, &agreed, 1, minimpi::BasicKind::kInt,
                                  minimpi::ReduceOp::kMax);
                   return agreed;
                 },
                 i);
  };

  std::vector<ResultRow> rows;
  for (const std::size_t size : sizes) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    double local_ns = 0.0;
    int timed = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      try {
        comm.barrier();
        const auto t0 = comm.vtime_ns();
        op(comm, size);
        if (i >= warmup) {
          local_ns += static_cast<double>(comm.vtime_ns() - t0);
          ++timed;
        }
      } catch (const minimpi::RankFailedError&) {
        recover(i);
      } catch (const minimpi::CommRevokedError&) {
        recover(i);
      }
    }
    double avg_us = timed > 0 ? local_ns / timed / 1000.0 : 0.0;
    try {
      double sum_us = 0.0;
      comm.allreduce(&avg_us, &sum_us, 1, minimpi::BasicKind::kDouble,
                     minimpi::ReduceOp::kSum);
      avg_us = sum_us / comm.size();
    } catch (const minimpi::RankFailedError&) {
      int scratch = 0;
      recover(scratch);
    } catch (const minimpi::CommRevokedError&) {
      int scratch = 0;
      recover(scratch);
    }
    if (world.rank() == 0) rows.push_back({size, avg_us});
  }
  return rows;
}

/// The same loop through a bindings environment (mv2j / ompij); the
/// recovery allreduces run on the native communicator underneath, like
/// the benchmarks' untimed rank averages.
template <typename EnvT, typename OpFn>
std::vector<ResultRow> bindings_resilient_loop(
    EnvT& env, const BenchOptions& opt,
    const std::vector<std::size_t>& sizes, OpFn&& op) {
  auto comm = env.COMM_WORLD();
  comm.setErrhandler(minimpi::Errhandler::kErrorsReturn);
  const auto recover = [&comm](int& i) {
    recover_loop([&comm] { comm = comm.shrink(); },
                 [&comm](int i) {
                   int agreed = i;
                   comm.native().allreduce(&i, &agreed, 1,
                                           minimpi::BasicKind::kInt,
                                           minimpi::ReduceOp::kMax);
                   return agreed;
                 },
                 i);
  };

  const int world_rank = env.COMM_WORLD().getRank();
  std::vector<ResultRow> rows;
  for (const std::size_t size : sizes) {
    const int iters = opt.iterations_for(size);
    const int warmup = opt.warmup_for(size);
    double local_ns = 0.0;
    int timed = 0;
    for (int i = 0; i < warmup + iters; ++i) {
      try {
        comm.barrier();
        const auto t0 = comm.native().vtime_ns();
        op(comm, size);
        if (i >= warmup) {
          local_ns += static_cast<double>(comm.native().vtime_ns() - t0);
          ++timed;
        }
      } catch (const minimpi::RankFailedError&) {
        recover(i);
      } catch (const minimpi::CommRevokedError&) {
        recover(i);
      }
    }
    double avg_us = timed > 0 ? local_ns / timed / 1000.0 : 0.0;
    try {
      double sum_us = 0.0;
      comm.native().allreduce(&avg_us, &sum_us, 1,
                              minimpi::BasicKind::kDouble,
                              minimpi::ReduceOp::kSum);
      avg_us = sum_us / comm.getSize();
    } catch (const minimpi::RankFailedError&) {
      int scratch = 0;
      recover(scratch);
    } catch (const minimpi::CommRevokedError&) {
      int scratch = 0;
      recover(scratch);
    }
    if (world_rank == 0) rows.push_back({size, avg_us});
  }
  return rows;
}

}  // namespace

// --- Native variants --------------------------------------------------------

std::vector<ResultRow> run_bcast_resilient_native(const minimpi::Comm& world,
                                                  const BenchOptions& opt) {
  std::vector<std::byte> buf(opt.max_size);
  return native_resilient_loop(world, opt, byte_sizes(opt),
                               [&](const minimpi::Comm& comm, std::size_t s) {
                                 comm.bcast(buf.data(), s, 0);
                               });
}

std::vector<ResultRow> run_allreduce_resilient_native(
    const minimpi::Comm& world, const BenchOptions& opt) {
  std::vector<float> sbuf(opt.max_size / 4, 1.0f), rbuf(opt.max_size / 4);
  return native_resilient_loop(
      world, opt, float_sizes(opt),
      [&](const minimpi::Comm& comm, std::size_t s) {
        comm.allreduce(sbuf.data(), rbuf.data(), s / 4,
                       minimpi::BasicKind::kFloat, minimpi::ReduceOp::kSum);
      });
}

// --- Bindings variants ------------------------------------------------------

template <typename EnvT>
std::vector<ResultRow> run_bcast_resilient(EnvT& env,
                                           const BenchOptions& opt) {
  if (opt.api == Api::kBuffer) {
    auto buf = env.newDirectBuffer(opt.max_size);
    return bindings_resilient_loop(env, opt, byte_sizes(opt),
                                   [&](auto& comm, std::size_t s) {
                                     comm.bcast(buf, static_cast<int>(s),
                                                BYTE, 0);
                                   });
  }
  auto arr = env.template newArray<jbyte>(opt.max_size);
  return bindings_resilient_loop(env, opt, byte_sizes(opt),
                                 [&](auto& comm, std::size_t s) {
                                   comm.bcast(arr, static_cast<int>(s), BYTE,
                                              0);
                                 });
}

template <typename EnvT>
std::vector<ResultRow> run_allreduce_resilient(EnvT& env,
                                               const BenchOptions& opt) {
  const std::size_t max_count = opt.max_size / sizeof(jfloat);
  if (opt.api == Api::kBuffer) {
    auto sbuf = env.newDirectBuffer(opt.max_size);
    auto rbuf = env.newDirectBuffer(opt.max_size);
    return bindings_resilient_loop(
        env, opt, float_sizes(opt), [&](auto& comm, std::size_t s) {
          comm.allReduce(sbuf, rbuf, static_cast<int>(s / sizeof(jfloat)),
                         FLOAT, SUM);
        });
  }
  auto sarr = env.template newArray<jfloat>(max_count);
  auto rarr = env.template newArray<jfloat>(max_count);
  return bindings_resilient_loop(
      env, opt, float_sizes(opt), [&](auto& comm, std::size_t s) {
        comm.allReduce(sarr, rarr, static_cast<int>(s / sizeof(jfloat)),
                       FLOAT, SUM);
      });
}

template std::vector<ResultRow> run_bcast_resilient<mv2j::Env>(
    mv2j::Env&, const BenchOptions&);
template std::vector<ResultRow> run_bcast_resilient<ompij::Env>(
    ompij::Env&, const BenchOptions&);
template std::vector<ResultRow> run_allreduce_resilient<mv2j::Env>(
    mv2j::Env&, const BenchOptions&);
template std::vector<ResultRow> run_allreduce_resilient<ompij::Env>(
    ompij::Env&, const BenchOptions&);

}  // namespace jhpc::ombj
