#include "jhpc/ombj/options.hpp"

#include "jhpc/support/error.hpp"

namespace jhpc::ombj {

const char* library_name(Library lib) {
  switch (lib) {
    case Library::kMv2j: return "MVAPICH2-J";
    case Library::kOmpij: return "Open MPI-J";
    case Library::kNativeMv2: return "MVAPICH2 (native)";
    case Library::kNativeOmpi: return "Open MPI (native)";
  }
  return "?";
}

const char* api_name(Api api) {
  return api == Api::kBuffer ? "buffer" : "arrays";
}

const char* bench_name(BenchKind kind) {
  switch (kind) {
    case BenchKind::kLatency: return "latency";
    case BenchKind::kBandwidth: return "bw";
    case BenchKind::kBiBandwidth: return "bibw";
    case BenchKind::kMultiBw: return "mbw_mr";
    case BenchKind::kMultiLat: return "multi_lat";
    case BenchKind::kBcast: return "bcast";
    case BenchKind::kReduce: return "reduce";
    case BenchKind::kAllreduce: return "allreduce";
    case BenchKind::kReduceScatter: return "reduce_scatter";
    case BenchKind::kScan: return "scan";
    case BenchKind::kGather: return "gather";
    case BenchKind::kScatter: return "scatter";
    case BenchKind::kAllgather: return "allgather";
    case BenchKind::kAlltoall: return "alltoall";
    case BenchKind::kGatherv: return "gatherv";
    case BenchKind::kScatterv: return "scatterv";
    case BenchKind::kAllgatherv: return "allgatherv";
    case BenchKind::kAlltoallv: return "alltoallv";
    case BenchKind::kBarrier: return "barrier";
    case BenchKind::kIbcast: return "ibcast";
    case BenchKind::kIallreduce: return "iallreduce";
    case BenchKind::kPutLatency: return "put_latency";
    case BenchKind::kGetBandwidth: return "get_bw";
  }
  return "?";
}

BenchKind bench_from_name(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(BenchKind::kGetBandwidth); ++k) {
    const auto kind = static_cast<BenchKind>(k);
    if (name == bench_name(kind)) return kind;
  }
  throw InvalidArgumentError("unknown benchmark name: '" + name + "'");
}

}  // namespace jhpc::ombj
