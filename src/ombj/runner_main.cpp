// ombj — the OMB-J command-line runner.
//
// The Java-bindings analogue of running an OSU micro-benchmark binary:
//
//   ombj --bench latency   --lib mv2j  --api buffer --ranks 2
//   ombj --bench bw        --lib ompij --api arrays            # reports n/a
//   ombj --bench allreduce --lib mv2j  --api arrays --ranks 16 --ppn 4
//   ombj --bench latency   --lib native-mv2 --ranks 2 --ppn 1  # Figure 11
//
// Flags mirror OMB where sensible (-m min:max via --min/--max, window via
// --window, validation via --validate).
#include <iostream>
#include <string>

#include "jhpc/ombj/harness.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/sizes.hpp"

namespace {

void usage() {
  std::cout <<
      "ombj — OMB-J benchmark runner\n"
      "  --bench NAME   latency|bw|bibw|mbw_mr|multi_lat|bcast|reduce|\n"
      "                 allreduce|reduce_scatter|scan|gather|scatter|\n"
      "                 allgather|alltoall|gatherv|scatterv|allgatherv|\n"
      "                 alltoallv|barrier|ibcast|iallreduce|\n"
      "                 put_latency|get_bw (default latency;\n"
      "                 the i* benchmarks also report overlap %)\n"
      "  --lib NAME     mv2j|ompij|native-mv2|native-ompi (default mv2j)\n"
      "  --api NAME     buffer|arrays (default buffer)\n"
      "  --coll NAME    collective engine: mv2|basic|hier (default: the\n"
      "                 library's own suite; docs/API.md)\n"
      "  --ranks N      number of ranks (default 2)\n"
      "  --ppn N        ranks per virtual node, 0 = single node (default 0)\n"
      "  --min SZ       minimum message size (default 1)\n"
      "  --max SZ       maximum message size (default 4M)\n"
      "  --iters N      iterations per size (small-message count)\n"
      "  --window N     window size for bw benchmarks (default 64)\n"
      "  --validate     include populate+verify in the timed region\n"
      "  --csv PATH     mirror the table to CSV\n"
      "  --pvars        print MPI_T-style performance variables at finalize\n"
      "                 (with latency-distribution p50/p90/p99 columns)\n"
      "  --pvars-json FILE  write pvars + histograms + comm matrix as JSON\n"
      "  --comm-matrix FILE write the per-(src,dst) message/byte matrix as\n"
      "                 CSV and print the finalize heatmap\n"
      "  --trace FILE   write a Chrome trace (virtual clock) to FILE\n"
      "  --fault-seed N seed the deterministic fault injector (default 1)\n"
      "  --drop P       per-attempt drop probability on inter-node links\n"
      "  --fault-jitter NS  max deterministic latency jitter, ns\n"
      "  --kill-rank R@N    kill rank R at virtual time N ns and recover by\n"
      "                 revoke+shrink (repeatable; bcast/allreduce only;\n"
      "                 rank 0 reports results and must survive)\n"
      "                 (see docs/FAULTS.md; JHPC_FAULT_* env equivalents)\n";
}

jhpc::ombj::Library library_from(const std::string& s) {
  using jhpc::ombj::Library;
  if (s == "mv2j") return Library::kMv2j;
  if (s == "ompij") return Library::kOmpij;
  if (s == "native-mv2") return Library::kNativeMv2;
  if (s == "native-ompi") return Library::kNativeOmpi;
  throw jhpc::InvalidArgumentError("unknown --lib: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "ombj";
  SeriesSpec series{Library::kMv2j, Api::kBuffer, ""};
  std::string csv_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        JHPC_REQUIRE(i + 1 < argc, "missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--bench") {
        fig.kind = bench_from_name(next());
      } else if (arg == "--lib") {
        series.library = library_from(next());
      } else if (arg == "--api") {
        const std::string a = next();
        JHPC_REQUIRE(a == "buffer" || a == "arrays",
                     "--api must be buffer or arrays");
        series.api = a == "buffer" ? Api::kBuffer : Api::kArrays;
      } else if (arg == "--coll") {
        fig.coll = next();  // validated against mv2|basic|hier in run_figure
      } else if (arg == "--ranks") {
        fig.ranks = std::stoi(next());
      } else if (arg == "--ppn") {
        fig.ppn = std::stoi(next());
      } else if (arg == "--min") {
        fig.options.min_size = jhpc::parse_size(next());
      } else if (arg == "--max") {
        fig.options.max_size = jhpc::parse_size(next());
      } else if (arg == "--iters") {
        fig.options.iters_small = std::stoi(next());
        fig.options.iters_large = std::max(1, fig.options.iters_small / 10);
      } else if (arg == "--window") {
        fig.options.window = std::stoi(next());
      } else if (arg == "--validate") {
        fig.options.validate = true;
      } else if (arg == "--csv") {
        csv_path = next();
      } else if (arg == "--pvars") {
        fig.obs.pvars = true;
      } else if (arg == "--pvars-json") {
        fig.obs.pvars_json_path = next();
      } else if (arg == "--comm-matrix") {
        fig.obs.comm_matrix = true;
        fig.obs.comm_matrix_csv = next();
      } else if (arg == "--trace") {
        fig.obs.trace_path = next();
      } else if (arg.rfind("--trace=", 0) == 0) {
        fig.obs.trace_path = arg.substr(std::string("--trace=").size());
      } else if (arg == "--fault-seed") {
        fig.fabric.faults.seed =
            static_cast<std::uint64_t>(std::stoull(next()));
      } else if (arg == "--drop") {
        fig.fabric.faults.link_defaults.drop_prob = std::stod(next());
      } else if (arg == "--fault-jitter") {
        fig.fabric.faults.link_defaults.jitter_ns = std::stoll(next());
      } else if (arg == "--kill-rank") {
        fig.fabric.faults.parse_kills(next());
        for (const auto& k : fig.fabric.faults.kills)
          JHPC_REQUIRE(k.rank != 0,
                       "--kill-rank: rank 0 reports the results and must "
                       "survive; kill a nonzero rank");
        fig.options.resilient = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        throw jhpc::InvalidArgumentError("unknown flag: " + arg);
      }
    }
    fig.options.api = series.api;
    fig.title = std::string("osu_") + bench_name(fig.kind) + " on " +
                library_name(series.library) + " (" +
                api_name(series.api) + ")";
    if (!fig.coll.empty()) fig.title += " [coll=" + fig.coll + "]";
    fig.series = {series};

    std::cout << "# OMB-J " << fig.title << "\n"
              << "# ranks=" << fig.ranks << " ppn=" << fig.ppn << "\n";
    const auto results = run_figure(fig);
    std::cout << figure_table(fig, results).to_text();
    for (const auto& r : results) {
      if (!r.supported) {
        std::cout << "unsupported: " << r.error << "\n";
        return 2;
      }
    }
    if (!csv_path.empty()) figure_table(fig, results).write_csv(csv_path);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ombj: " << e.what() << "\n";
    usage();
    return 1;
  }
}
