#include "jhpc/ombj/harness.hpp"

#include <cctype>
#include <iostream>
#include <map>
#include <mutex>
#include <string>

#include "jhpc/minimpi/universe.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/ombj/benchmarks.hpp"
#include "jhpc/ompij/ompij.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/paths.hpp"
#include "jhpc/support/sizes.hpp"
#include "jhpc/support/stats.hpp"

namespace jhpc::ombj {

namespace {

std::string default_label(const SeriesSpec& s) {
  return std::string(library_name(s.library)) + " " + api_name(s.api);
}

netsim::FabricConfig fabric_for(const FigureSpec& fig) {
  netsim::FabricConfig f = fig.fabric;
  f.ranks_per_node = fig.ppn;
  return f;
}

/// Filename-safe tag derived from a series label ("mv2j buffer" ->
/// "mv2j_buffer").
std::string label_slug(const std::string& label) {
  std::string out;
  for (const char ch : label) {
    out.push_back(
        std::isalnum(static_cast<unsigned char>(ch)) != 0 ? ch : '_');
  }
  return out;
}

/// The figure's obs config specialised for one series: multi-series
/// figures get one trace file per series so jobs do not overwrite each
/// other.
obs::ObsConfig obs_for(const FigureSpec& fig, const std::string& label) {
  obs::ObsConfig o = fig.obs;
  if (!o.trace_path.empty() && fig.series.size() > 1)
    o.trace_path = path_with_tag(o.trace_path, label_slug(label));
  return o;
}

/// The collective-engine override in effect for one series: the series'
/// own `coll` wins, then the figure-wide `--coll`, else the library
/// default (empty).
std::string coll_for(const FigureSpec& fig, const SeriesSpec& series) {
  const std::string& coll = !series.coll.empty() ? series.coll : fig.coll;
  JHPC_REQUIRE(coll.empty() || coll == "mv2" || coll == "basic" ||
                   coll == "hier",
               "collective engine must be 'mv2', 'basic' or 'hier', got '" +
                   coll + "'");
  return coll;
}

minimpi::CollectiveSuite suite_for(const std::string& coll,
                                   minimpi::CollectiveSuite fallback) {
  if (coll == "mv2") return minimpi::CollectiveSuite::kMv2;
  if (coll == "basic") return minimpi::CollectiveSuite::kOmpiBasic;
  if (coll == "hier") return minimpi::CollectiveSuite::kHier;
  return fallback;
}

}  // namespace

SeriesResult run_series(const FigureSpec& fig, const SeriesSpec& series) {
  SeriesResult result;
  result.label = series.label.empty() ? default_label(series) : series.label;

  // The series decides which user-facing API the benchmark exercises.
  BenchOptions options = fig.options;
  options.api = series.api;
  const obs::ObsConfig obs = obs_for(fig, result.label);
  const std::string coll = coll_for(fig, series);

  // Rows produced by rank 0 inside the job.
  std::vector<ResultRow> rows;
  try {
    switch (series.library) {
      case Library::kMv2j: {
        mv2j::RunOptions opts;
        opts.ranks = fig.ranks;
        opts.fabric = fabric_for(fig);
        opts.obs = obs;
        // The bindings keep their identity ("mv2j runs on MVAPICH2");
        // `--coll hier` swaps in the hierarchical engine underneath.
        opts.hier_collectives = coll == "hier";
        // Size the managed heap for the benchmark's arrays (live payload
        // plus copying-GC headroom).
        opts.jvm.heap_bytes = std::max<std::size_t>(
            32ull << 20, 8 * fig.options.max_size);
        mv2j::run(opts, [&](mv2j::Env& env) {
          auto r = run_benchmark(fig.kind, env, options);
          if (env.COMM_WORLD().getRank() == 0) rows = std::move(r);
        });
        break;
      }
      case Library::kOmpij: {
        ompij::RunOptions opts;
        opts.ranks = fig.ranks;
        opts.fabric = fabric_for(fig);
        opts.obs = obs;
        opts.hier_collectives = coll == "hier";
        opts.jvm.heap_bytes = std::max<std::size_t>(
            32ull << 20, 8 * fig.options.max_size);
        ompij::run(opts, [&](ompij::Env& env) {
          auto r = run_benchmark(fig.kind, env, options);
          if (env.COMM_WORLD().getRank() == 0) rows = std::move(r);
        });
        break;
      }
      case Library::kNativeMv2:
      case Library::kNativeOmpi: {
        minimpi::UniverseConfig cfg;
        cfg.world_size = fig.ranks;
        cfg.fabric = fabric_for(fig);
        cfg.suite = suite_for(coll, series.library == Library::kNativeMv2
                                         ? minimpi::CollectiveSuite::kMv2
                                         : minimpi::CollectiveSuite::kOmpiBasic);
        cfg.apply_suite_profile();
        cfg.obs = obs;
        minimpi::Universe::launch(cfg, [&](minimpi::Comm& world) {
          auto r = run_benchmark_native(fig.kind, world, options);
          if (world.rank() == 0) rows = std::move(r);
        });
        break;
      }
    }
    result.rows = std::move(rows);
  } catch (const UnsupportedOperationError& e) {
    // E.g. Open MPI-J + arrays + non-blocking (the bandwidth benches):
    // the figure reports the series as absent, exactly like the paper.
    result.supported = false;
    result.error = e.what();
  }
  return result;
}

std::vector<SeriesResult> run_figure(const FigureSpec& fig) {
  std::vector<SeriesResult> out;
  out.reserve(fig.series.size());
  for (const SeriesSpec& s : fig.series) {
    std::cerr << "[" << fig.id << "] running series: "
              << (s.label.empty() ? default_label(s) : s.label) << "\n";
    out.push_back(run_series(fig, s));
  }
  return out;
}

Table figure_table(const FigureSpec& fig,
                   const std::vector<SeriesResult>& results) {
  const bool is_bw = fig.kind == BenchKind::kBandwidth ||
                     fig.kind == BenchKind::kBiBandwidth;
  // The nonblocking benchmarks carry a second metric per series: the
  // communication/computation overlap percentage.
  const bool is_overlap = fig.kind == BenchKind::kIbcast ||
                          fig.kind == BenchKind::kIallreduce;
  const std::size_t per_series = is_overlap ? 2 : 1;
  std::vector<std::string> headers{"Size"};
  for (const auto& r : results) {
    headers.push_back(r.label + (is_bw ? " MB/s" : " us"));
    if (is_overlap) headers.push_back(r.label + " ovl%");
  }
  Table table(std::move(headers));

  // Union of sizes, ordered.
  const std::size_t width = results.size() * per_series;
  std::map<std::size_t, std::vector<std::string>> by_size;
  for (std::size_t c = 0; c < results.size(); ++c) {
    for (const auto& row : results[c].rows) {
      auto& cells = by_size[row.size];
      cells.resize(width, "-");
      cells[c * per_series] = fmt_double(row.value, 2);
      if (is_overlap) cells[c * per_series + 1] = fmt_double(row.overlap, 1);
    }
  }
  // Unsupported series: mark every row.
  for (auto& [size, cells] : by_size) {
    cells.resize(width, "-");
    for (std::size_t c = 0; c < results.size(); ++c) {
      if (!results[c].supported) {
        for (std::size_t k = 0; k < per_series; ++k)
          cells[c * per_series + k] = "n/a";
      }
    }
    std::vector<std::string> row{format_size(size)};
    row.insert(row.end(), cells.begin(), cells.end());
    table.add_row(std::move(row));
  }
  return table;
}

double average_ratio(const std::vector<SeriesResult>& results,
                     const std::string& baseline_label,
                     const std::string& candidate_label) {
  const SeriesResult* base = nullptr;
  const SeriesResult* cand = nullptr;
  for (const auto& r : results) {
    if (r.label == baseline_label) base = &r;
    if (r.label == candidate_label) cand = &r;
  }
  if (base == nullptr || cand == nullptr || !base->supported ||
      !cand->supported) {
    return 0.0;
  }
  std::vector<double> ratios;
  for (const auto& b : base->rows) {
    for (const auto& c : cand->rows) {
      if (b.size == c.size && c.value > 0.0) {
        ratios.push_back(b.value / c.value);
        break;
      }
    }
  }
  if (ratios.empty()) return 0.0;
  return geometric_mean(ratios);
}

int figure_main(FigureSpec fig, int argc, char** argv) {
  std::string csv_path;
  bool quick = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        JHPC_REQUIRE(i + 1 < argc, "missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--ranks") {
        fig.ranks = std::stoi(next());
      } else if (arg == "--ppn") {
        fig.ppn = std::stoi(next());
      } else if (arg == "--min") {
        fig.options.min_size = parse_size(next());
      } else if (arg == "--max") {
        fig.options.max_size = parse_size(next());
      } else if (arg == "--iters") {
        fig.options.iters_small = std::stoi(next());
        fig.options.iters_large = std::max(1, fig.options.iters_small / 10);
      } else if (arg == "--window") {
        fig.options.window = std::stoi(next());
      } else if (arg == "--coll") {
        fig.coll = next();
      } else if (arg == "--csv") {
        csv_path = next();
      } else if (arg == "--quick") {
        quick = true;
      } else if (arg == "--pvars") {
        fig.obs.pvars = true;
      } else if (arg == "--pvars-json") {
        fig.obs.pvars_json_path = next();
      } else if (arg == "--comm-matrix") {
        fig.obs.comm_matrix = true;
        fig.obs.comm_matrix_csv = next();
      } else if (arg == "--trace") {
        fig.obs.trace_path = next();
      } else if (arg.rfind("--trace=", 0) == 0) {
        fig.obs.trace_path = arg.substr(std::string("--trace=").size());
      } else if (arg == "--fault-seed") {
        fig.fabric.faults.seed =
            static_cast<std::uint64_t>(std::stoull(next()));
      } else if (arg == "--drop") {
        fig.fabric.faults.link_defaults.drop_prob = std::stod(next());
      } else if (arg == "--fault-jitter") {
        fig.fabric.faults.link_defaults.jitter_ns = std::stoll(next());
      } else if (arg == "--kill-rank") {
        fig.fabric.faults.parse_kills(next());
        for (const auto& k : fig.fabric.faults.kills)
          JHPC_REQUIRE(k.rank != 0,
                       "--kill-rank: rank 0 reports the results and must "
                       "survive; kill a nonzero rank");
        fig.options.resilient = true;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << fig.id << ": " << fig.title << "\n"
                  << "flags: --ranks N --ppn N --min SZ --max SZ --iters N "
                     "--window N --coll mv2|basic|hier --csv PATH --quick "
                     "--pvars "
                     "--pvars-json FILE --comm-matrix FILE --trace FILE\n"
                     "       --fault-seed N --drop P --fault-jitter NS "
                     "--kill-rank R@N (seeded fault injection and ULFM "
                     "recovery, docs/FAULTS.md)\n";
        return 0;
      } else {
        throw InvalidArgumentError("unknown flag: " + arg);
      }
    }
    if (quick) {
      fig.options.iters_small = std::min(fig.options.iters_small, 20);
      fig.options.iters_large = std::min(fig.options.iters_large, 5);
      fig.options.warmup_small = std::min(fig.options.warmup_small, 5);
      fig.options.warmup_large = std::min(fig.options.warmup_large, 2);
    }

    std::cout << "== " << fig.id << ": " << fig.title << " ==\n"
              << "ranks=" << fig.ranks << " ppn=" << fig.ppn
              << " sizes=[" << format_size(fig.options.min_size) << ","
              << format_size(fig.options.max_size) << "]\n";
    const auto results = run_figure(fig);
    const Table table = figure_table(fig, results);
    std::cout << table.to_text();
    for (const auto& r : results) {
      if (!r.supported)
        std::cout << "note: " << r.label << " not supported: " << r.error
                  << "\n";
    }
    const bool is_bw = fig.kind == BenchKind::kBandwidth ||
                       fig.kind == BenchKind::kBiBandwidth;
    for (const auto& [base, cand] : fig.ratios) {
      const double ratio = is_bw ? average_ratio(results, cand, base)
                                 : average_ratio(results, base, cand);
      if (ratio > 0.0) {
        std::cout << "avg ratio (" << base << " vs " << cand
                  << "): " << fmt_double(ratio, 2) << "x\n";
      }
    }
    if (!csv_path.empty()) {
      table.write_csv(csv_path);
      std::cout << "csv written to " << csv_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << fig.id << " failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace jhpc::ombj
