#include "jhpc/minijvm/direct_memory.hpp"

#include "jhpc/minijvm/heap.hpp"
#include "jhpc/support/env.hpp"

namespace jhpc::minijvm {

DirectMemory& DirectMemory::instance() {
  static DirectMemory dm;
  return dm;
}

DirectMemory::DirectMemory() {
  limit_ = static_cast<std::size_t>(env_int64("JHPC_MAX_DIRECT_MB", 0)) << 20;
}

void DirectMemory::set_limit(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  limit_ = bytes;
}

std::size_t DirectMemory::limit() const {
  std::lock_guard<std::mutex> lk(mu_);
  return limit_;
}

void DirectMemory::reserve(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (limit_ != 0 && stats_.live_bytes + bytes > limit_) {
    throw OutOfMemoryError(
        "Direct buffer memory: " + std::to_string(bytes) +
        " bytes requested, " + std::to_string(stats_.live_bytes) +
        " live, limit " + std::to_string(limit_));
  }
  ++stats_.allocations;
  stats_.allocated_bytes += bytes;
  stats_.live_bytes += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
}

void DirectMemory::release(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.live_bytes -= bytes;
}

DirectMemoryStats DirectMemory::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void DirectMemory::reset_peak() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.peak_bytes = stats_.live_bytes;
}

}  // namespace jhpc::minijvm
