#include "jhpc/minijvm/bytebuffer.hpp"

#include <cstring>

#include "jhpc/minijvm/direct_memory.hpp"
#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/support/clock.hpp"

namespace jhpc::minijvm {

ByteBuffer ByteBuffer::allocate_direct(std::size_t capacity) {
  // Direct memory is a bounded JVM resource: account first (may throw
  // OutOfMemoryError("Direct buffer memory")), release via the deleter.
  DirectMemory::instance().reserve(capacity);
  ByteBuffer b;
  try {
    b.direct_ = std::shared_ptr<std::byte[]>(
        new std::byte[capacity](), [capacity](std::byte* p) {
          DirectMemory::instance().release(capacity);
          delete[] p;
        });
  } catch (...) {
    DirectMemory::instance().release(capacity);
    throw;
  }
  // Model the documented extra cost of direct allocation (page-touching,
  // alignment bookkeeping) so "costly to create" is observable.
  jhpc::burn_ns(200 + static_cast<std::int64_t>(capacity / 64));
  b.capacity_ = b.limit_ = capacity;
  return b;
}

ByteBuffer ByteBuffer::allocate(Jvm& jvm, std::size_t capacity) {
  return wrap(jvm.new_array<jbyte>(capacity));
}

ByteBuffer ByteBuffer::wrap(JArray<jbyte> array) {
  ByteBuffer b;
  b.capacity_ = b.limit_ = array.length();
  b.heap_ = std::move(array);
  return b;
}

ByteBuffer& ByteBuffer::position(std::size_t p) {
  if (p > limit_) throw BufferError("position beyond limit");
  position_ = p;
  if (mark_ >= 0 && static_cast<std::size_t>(mark_) > p) mark_ = -1;
  return *this;
}

ByteBuffer& ByteBuffer::limit(std::size_t n) {
  if (n > capacity_) throw BufferError("limit beyond capacity");
  limit_ = n;
  if (position_ > n) position_ = n;
  if (mark_ >= 0 && static_cast<std::size_t>(mark_) > n) mark_ = -1;
  return *this;
}

ByteBuffer& ByteBuffer::clear() {
  position_ = 0;
  limit_ = capacity_;
  mark_ = -1;
  return *this;
}

ByteBuffer& ByteBuffer::flip() {
  limit_ = position_;
  position_ = 0;
  mark_ = -1;
  return *this;
}

ByteBuffer& ByteBuffer::rewind() {
  position_ = 0;
  mark_ = -1;
  return *this;
}

ByteBuffer& ByteBuffer::mark() {
  mark_ = static_cast<std::ptrdiff_t>(position_);
  return *this;
}

ByteBuffer& ByteBuffer::reset() {
  if (mark_ < 0) throw BufferError("reset without a mark");
  position_ = static_cast<std::size_t>(mark_);
  return *this;
}

std::byte* ByteBuffer::storage_address(std::size_t index) const {
  JHPC_REQUIRE(!is_null(), "storage_address on null buffer");
  if (direct_ != nullptr) return direct_.get() + base_ + index;
  return heap_.raw_address() + base_ + index;
}

std::byte* ByteBuffer::at(std::size_t index, std::size_t width) const {
  if (is_null()) throw BufferError("access on null buffer");
  if (index + width > limit_) throw BufferError("buffer index out of bounds");
  return storage_address(index);
}

std::byte* ByteBuffer::advance(std::size_t width) {
  if (is_null()) throw BufferError("access on null buffer");
  if (position_ + width > limit_)
    throw BufferError("buffer overflow/underflow at position " +
                      std::to_string(position_));
  std::byte* p = storage_address(position_);
  position_ += width;
  return p;
}

ByteBuffer& ByteBuffer::put(jbyte v) { return put_value(v); }
jbyte ByteBuffer::get() { return get_value<jbyte>(); }
ByteBuffer& ByteBuffer::put_char(jchar v) { return put_value(v); }
jchar ByteBuffer::get_char() { return get_value<jchar>(); }
ByteBuffer& ByteBuffer::put_short(jshort v) { return put_value(v); }
jshort ByteBuffer::get_short() { return get_value<jshort>(); }
ByteBuffer& ByteBuffer::put_int(jint v) { return put_value(v); }
jint ByteBuffer::get_int() { return get_value<jint>(); }
ByteBuffer& ByteBuffer::put_long(jlong v) { return put_value(v); }
jlong ByteBuffer::get_long() { return get_value<jlong>(); }
ByteBuffer& ByteBuffer::put_float(jfloat v) { return put_value(v); }
jfloat ByteBuffer::get_float() { return get_value<jfloat>(); }
ByteBuffer& ByteBuffer::put_double(jdouble v) { return put_value(v); }
jdouble ByteBuffer::get_double() { return get_value<jdouble>(); }

ByteBuffer& ByteBuffer::put(std::size_t index, jbyte v) {
  return put_value_at(index, v);
}
jbyte ByteBuffer::get(std::size_t index) const {
  return get_value_at<jbyte>(index);
}
ByteBuffer& ByteBuffer::put_int(std::size_t index, jint v) {
  return put_value_at(index, v);
}
jint ByteBuffer::get_int(std::size_t index) const {
  return get_value_at<jint>(index);
}
ByteBuffer& ByteBuffer::put_long(std::size_t index, jlong v) {
  return put_value_at(index, v);
}
jlong ByteBuffer::get_long(std::size_t index) const {
  return get_value_at<jlong>(index);
}
ByteBuffer& ByteBuffer::put_double(std::size_t index, jdouble v) {
  return put_value_at(index, v);
}
jdouble ByteBuffer::get_double(std::size_t index) const {
  return get_value_at<jdouble>(index);
}

ByteBuffer& ByteBuffer::put_bytes(const void* src, std::size_t n) {
  std::memcpy(advance(n), src, n);
  return *this;
}

ByteBuffer& ByteBuffer::get_bytes(void* dst, std::size_t n) {
  std::memcpy(dst, advance(n), n);
  return *this;
}

ByteBuffer ByteBuffer::slice() const {
  JHPC_REQUIRE(!is_null(), "slice of null buffer");
  ByteBuffer b = *this;
  b.base_ = base_ + position_;
  b.capacity_ = b.limit_ = remaining();
  b.position_ = 0;
  b.mark_ = -1;
  return b;
}

ByteBuffer ByteBuffer::duplicate() const {
  JHPC_REQUIRE(!is_null(), "duplicate of null buffer");
  return *this;  // shared storage, copied state — exactly java.nio
}

}  // namespace jhpc::minijvm
