// Accounting for direct (off-heap) buffer memory.
//
// The JVM bounds the memory direct ByteBuffers may occupy
// (-XX:MaxDirectMemorySize) and raises OutOfMemoryError("Direct buffer
// memory") past it — a real operational constraint for Java MPI codes
// that allocate large direct buffers (and one more reason the buffering
// layer pools them instead of allocating per message). This registry
// reproduces it: every ByteBuffer::allocate_direct reserves here and the
// storage's deleter releases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace jhpc::minijvm {

struct DirectMemoryStats {
  std::uint64_t allocations = 0;      ///< total direct allocations ever
  std::uint64_t allocated_bytes = 0;  ///< total bytes ever reserved
  std::size_t live_bytes = 0;         ///< currently reserved
  std::size_t peak_bytes = 0;         ///< high-water mark
};

/// Process-wide direct-memory registry (the paper's per-rank JVMs map to
/// rank threads of one process, so a single registry plays the role of
/// all their -XX:MaxDirectMemorySize budgets combined).
class DirectMemory {
 public:
  static DirectMemory& instance();

  /// Cap in bytes; 0 means unlimited. Env default: JHPC_MAX_DIRECT_MB
  /// (0 = unlimited).
  void set_limit(std::size_t bytes);
  std::size_t limit() const;

  /// Reserve `bytes`; throws jhpc::minijvm::OutOfMemoryError with the
  /// JVM's "Direct buffer memory" message when the cap would be exceeded.
  void reserve(std::size_t bytes);
  void release(std::size_t bytes);

  DirectMemoryStats stats() const;
  /// Zero the counters (tests). Does not touch live accounting.
  void reset_peak();

 private:
  DirectMemory();
  mutable std::mutex mu_;
  std::size_t limit_ = 0;
  DirectMemoryStats stats_;
};

}  // namespace jhpc::minijvm
