// Managed Java-style primitive arrays.
//
// A JArray is a handle into the managed heap: the collector may relocate
// its storage at any allocation point, so element access goes through the
// handle table (one indirection — the price of movability). This is the
// "Java array" of the paper: fast to read/write element-wise (Figure 18),
// but impossible to hand to native code without a copy or a pin.
#pragma once

#include <cstddef>
#include <memory>

#include "jhpc/minijvm/heap.hpp"
#include "jhpc/minijvm/jtypes.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {

/// Shared-ownership handle to a managed primitive array. Copying a JArray
/// copies the reference (Java semantics); the object is released when the
/// last reference drops.
template <JavaPrimitive T>
class JArray {
 public:
  /// Null reference.
  JArray() = default;

  bool is_null() const { return ref_ == nullptr; }
  std::size_t length() const { return len_; }

  /// Element access with bounds checking (Java semantics). The reference
  /// returned is invalidated by the next allocation/GC — use and discard.
  /// This is the JIT-compiled array access of a real JVM: a bounds check
  /// plus one indirection through the (movable) handle — markedly cheaper
  /// than ByteBuffer's accessor machinery, which is the mechanism behind
  /// the paper's Figure 18.
  T& operator[](std::size_t i) {
    JHPC_REQUIRE(ref_ != nullptr && i < len_,
                 "JArray index out of bounds");
    return reinterpret_cast<T*>(
        ref_->heap->address_fast(ref_->id))[i];
  }
  const T& operator[](std::size_t i) const {
    JHPC_REQUIRE(ref_ != nullptr && i < len_,
                 "JArray index out of bounds");
    return reinterpret_cast<const T*>(
        ref_->heap->address_fast(ref_->id))[i];
  }

  /// Heap handle (for JNI-style calls).
  int handle() const {
    JHPC_REQUIRE(ref_ != nullptr, "handle() on null JArray");
    return ref_->id;
  }

  /// The owning heap.
  ManagedHeap& heap() const {
    JHPC_REQUIRE(ref_ != nullptr, "heap() on null JArray");
    return *ref_->heap;
  }

  /// Current raw storage address — moves on GC. Exposed for tests that
  /// assert the collector really relocates objects, and for the JNI
  /// emulation; application code must not hold it across allocations.
  std::byte* raw_address() const {
    JHPC_REQUIRE(ref_ != nullptr, "raw_address() on null JArray");
    return ref_->heap->address(ref_->id);
  }

  bool operator==(const JArray& other) const { return ref_ == other.ref_; }

 private:
  friend class Jvm;

  struct Ref {
    Ref(ManagedHeap* h, int i) : heap(h), id(i) {}
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { heap->release(id); }
    ManagedHeap* heap;
    int id;
  };

  JArray(ManagedHeap* heap, int id, std::size_t len)
      : ref_(std::make_shared<Ref>(heap, id)), len_(len) {}

  T* typed() const {
    return reinterpret_cast<T*>(ref_->heap->address(ref_->id));
  }

  std::shared_ptr<Ref> ref_;
  std::size_t len_ = 0;
};

}  // namespace jhpc::minijvm
