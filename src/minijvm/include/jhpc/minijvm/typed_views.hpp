// Typed buffer views: java.nio's CharBuffer / ShortBuffer / IntBuffer /
// LongBuffer / FloatBuffer / DoubleBuffer family (paper Section II-B),
// created from a ByteBuffer the way asIntBuffer() et al. do.
//
// A view shares the backing storage of the ByteBuffer slice it was
// created from and keeps its own element-granular position/limit. Element
// accessors carry the same structural costs as ByteBuffer's (bounds check
// + byte-order handling), which is precisely why Figure 18 finds plain
// Java arrays faster to read and write.
#pragma once

#include <cstddef>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/jtypes.hpp"

namespace jhpc::minijvm {

/// A T-element view over a ByteBuffer's [position, limit) window.
template <JavaPrimitive T>
class TypedBufferView {
 public:
  /// View of `buffer`'s remaining content (ByteBuffer.as<T>Buffer()).
  /// The element capacity is remaining()/sizeof(T), truncated.
  explicit TypedBufferView(const ByteBuffer& buffer)
      : bytes_(buffer.slice()),
        capacity_(bytes_.capacity() / sizeof(T)),
        limit_(capacity_) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t position() const { return position_; }
  std::size_t limit() const { return limit_; }
  std::size_t remaining() const { return limit_ - position_; }
  bool has_remaining() const { return position_ < limit_; }
  ByteOrder order() const { return bytes_.order(); }

  TypedBufferView& position(std::size_t p) {
    if (p > limit_) throw BufferError("view position beyond limit");
    position_ = p;
    return *this;
  }
  TypedBufferView& limit(std::size_t n) {
    if (n > capacity_) throw BufferError("view limit beyond capacity");
    limit_ = n;
    if (position_ > n) position_ = n;
    return *this;
  }
  TypedBufferView& clear() {
    position_ = 0;
    limit_ = capacity_;
    return *this;
  }
  TypedBufferView& flip() {
    limit_ = position_;
    position_ = 0;
    return *this;
  }
  TypedBufferView& rewind() {
    position_ = 0;
    return *this;
  }

  /// Relative accessors (advance position).
  TypedBufferView& put(T value) {
    store(checked(position_), value);
    ++position_;
    return *this;
  }
  T get() {
    const T v = load(checked(position_));
    ++position_;
    return v;
  }

  /// Absolute accessors.
  TypedBufferView& put(std::size_t index, T value) {
    store(checked_abs(index), value);
    return *this;
  }
  T get(std::size_t index) const { return load(checked_abs(index)); }

 private:
  std::size_t checked(std::size_t index) const {
    if (index >= limit_) throw BufferError("view overflow/underflow");
    return index;
  }
  std::size_t checked_abs(std::size_t index) const {
    if (index >= limit_) throw BufferError("view index out of bounds");
    return index;
  }
  void store(std::size_t index, T value) {
    jhpc::store_ordered(bytes_.storage_address(index * sizeof(T)), value,
                        bytes_.order());
  }
  T load(std::size_t index) const {
    return jhpc::load_ordered<T>(bytes_.storage_address(index * sizeof(T)),
                                 bytes_.order());
  }

  ByteBuffer bytes_;  // slice sharing the parent's storage and order
  std::size_t capacity_;
  std::size_t position_ = 0;
  std::size_t limit_;
};

using CharBufferView = TypedBufferView<jchar>;
using ShortBufferView = TypedBufferView<jshort>;
using IntBufferView = TypedBufferView<jint>;
using LongBufferView = TypedBufferView<jlong>;
using FloatBufferView = TypedBufferView<jfloat>;
using DoubleBufferView = TypedBufferView<jdouble>;

/// ByteBuffer.asIntBuffer() and friends.
inline CharBufferView as_char_buffer(const ByteBuffer& b) {
  return CharBufferView(b);
}
inline ShortBufferView as_short_buffer(const ByteBuffer& b) {
  return ShortBufferView(b);
}
inline IntBufferView as_int_buffer(const ByteBuffer& b) {
  return IntBufferView(b);
}
inline LongBufferView as_long_buffer(const ByteBuffer& b) {
  return LongBufferView(b);
}
inline FloatBufferView as_float_buffer(const ByteBuffer& b) {
  return FloatBufferView(b);
}
inline DoubleBufferView as_double_buffer(const ByteBuffer& b) {
  return DoubleBufferView(b);
}

}  // namespace jhpc::minijvm
