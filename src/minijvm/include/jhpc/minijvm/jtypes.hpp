// Java primitive type aliases (JNI naming) and the concept constraining
// managed arrays to Java's eight primitive types.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

namespace jhpc::minijvm {

using jbyte = std::int8_t;
using jboolean = std::uint8_t;
using jchar = std::uint16_t;  // UTF-16 code unit
using jshort = std::int16_t;
using jint = std::int32_t;
using jlong = std::int64_t;
using jfloat = float;
using jdouble = double;

/// The eight Java primitive types, the only element types a JArray can
/// carry (Java has no arrays of structs).
template <typename T>
concept JavaPrimitive =
    std::same_as<T, jbyte> || std::same_as<T, jboolean> ||
    std::same_as<T, jchar> || std::same_as<T, jshort> ||
    std::same_as<T, jint> || std::same_as<T, jlong> ||
    std::same_as<T, jfloat> || std::same_as<T, jdouble>;

}  // namespace jhpc::minijvm
