// JNI environment emulation: the three ways native code can reach Java
// data, with their true costs and hazards.
//
//   get_array_elements / release_array_elements
//       — copy-out on get, copy-back on release (modern JVMs do not pin,
//         so is_copy is always true; Section IV-B of the paper).
//   get_primitive_array_critical / release_primitive_array_critical
//       — no copy, but the heap is pinned: the collector cannot run until
//         release (the hazard the paper warns about).
//   get_direct_buffer_address
//       — raw pointer for direct buffers; null for heap buffers (as JNI
//         returns NULL for non-direct buffers).
//
// The Java->native transition cost is charged once per bound call via
// crossing() — the bindings invoke it at native-method entry, the way a
// real JNI call pays its marshalling cost once. The utility functions
// above only pay a small per-call handle check (handle_check()), matching
// their real cost profile. Figure 11's ~1 us Java-vs-native overhead
// emerges from crossing() + handle checks + the real copies.
#pragma once

#include <cstddef>
#include <cstring>
#include <unordered_map>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/jarray.hpp"
#include "jhpc/minijvm/jtypes.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {

class Jvm;

/// Release modes, mirroring the JNI constants.
enum class ReleaseMode {
  kCommitAndFree,  ///< 0: copy back and free the native copy
  kCommit,         ///< JNI_COMMIT: copy back, keep the copy alive
  kAbort,          ///< JNI_ABORT: discard changes, free the copy
};

/// The per-JVM JNI environment. Like a real JNIEnv it is owned by one
/// thread (the rank thread).
class JniEnv {
 public:
  explicit JniEnv(Jvm& jvm, std::int64_t crossing_ns)
      : jvm_(jvm), crossing_ns_(crossing_ns) {}
  ~JniEnv();
  JniEnv(const JniEnv&) = delete;
  JniEnv& operator=(const JniEnv&) = delete;

  /// Model one Java->native method transition (argument marshalling,
  /// local-reference frame setup). The bindings charge this once at the
  /// entry of every bound native method.
  void crossing() const { jhpc::burn_ns(crossing_ns_); }

  /// Cheap per-utility cost: a JNI handle-table dereference and check.
  void handle_check() const { jhpc::burn_ns(crossing_ns_ / 10); }

  /// Get<Type>ArrayElements: returns a NATIVE COPY of the array contents.
  /// `is_copy`, when non-null, is set true (no pinning support, like
  /// OpenJDK). The copy stays valid across GCs — that is the point.
  template <JavaPrimitive T>
  T* get_array_elements(const JArray<T>& array, bool* is_copy = nullptr) {
    handle_check();
    const std::size_t bytes = array.length() * sizeof(T);
    T* copy = static_cast<T*>(::operator new(bytes));
    std::memcpy(copy, array.raw_address(), bytes);
    copies_.emplace(copy, Copy{array.handle(), bytes});
    if (is_copy != nullptr) *is_copy = true;
    return copy;
  }

  /// Release<Type>ArrayElements: copy back (unless kAbort) into the
  /// array's CURRENT location (found via its handle, so a GC between get
  /// and release is harmless) and free the copy (unless kCommit).
  template <JavaPrimitive T>
  void release_array_elements(const JArray<T>& array, T* elems,
                              ReleaseMode mode = ReleaseMode::kCommitAndFree) {
    handle_check();
    const auto it = copies_.find(elems);
    JHPC_REQUIRE(it != copies_.end(),
                 "release_array_elements: pointer was not returned by "
                 "get_array_elements");
    JHPC_REQUIRE(it->second.handle == array.handle(),
                 "release_array_elements: wrong array for this pointer");
    if (mode != ReleaseMode::kAbort) {
      std::memcpy(array.raw_address(), elems, it->second.bytes);
    }
    if (mode != ReleaseMode::kCommit) {
      ::operator delete(elems);
      copies_.erase(it);
    }
  }

  /// Get<Type>ArrayRegion: copy `len` elements starting at `start` into a
  /// caller-provided native buffer. This is what the real Open MPI Java
  /// bindings use per call — the copy is sized by the message, not by the
  /// array.
  template <JavaPrimitive T>
  void get_array_region(const JArray<T>& array, std::size_t start,
                        std::size_t len, T* out) {
    handle_check();
    JHPC_REQUIRE(start + len <= array.length(),
                 "get_array_region out of bounds");
    std::memcpy(out, array.raw_address() + start * sizeof(T),
                len * sizeof(T));
  }

  /// Set<Type>ArrayRegion: copy a native buffer back into the array.
  template <JavaPrimitive T>
  void set_array_region(const JArray<T>& array, std::size_t start,
                        std::size_t len, const T* in) {
    handle_check();
    JHPC_REQUIRE(start + len <= array.length(),
                 "set_array_region out of bounds");
    std::memcpy(array.raw_address() + start * sizeof(T), in,
                len * sizeof(T));
  }

  /// GetPrimitiveArrayCritical: no copy; pins the heap (GC blocked) and
  /// returns the live storage pointer. Must be paired with
  /// release_primitive_array_critical promptly.
  template <JavaPrimitive T>
  T* get_primitive_array_critical(const JArray<T>& array) {
    handle_check();
    array.heap().pin(array.handle());
    return reinterpret_cast<T*>(array.raw_address());
  }

  template <JavaPrimitive T>
  void release_primitive_array_critical(const JArray<T>& array, T* carray) {
    handle_check();
    JHPC_REQUIRE(carray ==
                     reinterpret_cast<T*>(array.raw_address()),
                 "release_primitive_array_critical: pointer mismatch "
                 "(the array cannot have moved while pinned)");
    array.heap().unpin(array.handle());
  }

  /// GetDirectBufferAddress: stable raw pointer for direct buffers,
  /// nullptr for heap buffers (JNI returns NULL there).
  void* get_direct_buffer_address(const ByteBuffer& buffer) const {
    handle_check();
    if (buffer.is_null() || !buffer.is_direct()) return nullptr;
    return buffer.storage_address(0);
  }

  /// GetDirectBufferCapacity: capacity for direct buffers, SIZE_MAX (JNI
  /// returns -1) otherwise.
  std::size_t get_direct_buffer_capacity(const ByteBuffer& buffer) const {
    handle_check();
    if (buffer.is_null() || !buffer.is_direct()) return SIZE_MAX;
    return buffer.capacity();
  }

  /// Outstanding native copies (leak detector for tests).
  std::size_t outstanding_copies() const { return copies_.size(); }

 private:
  struct Copy {
    int handle;
    std::size_t bytes;
  };
  Jvm& jvm_;
  std::int64_t crossing_ns_;
  std::unordered_map<void*, Copy> copies_;
};

}  // namespace jhpc::minijvm
