// The Jvm facade: one simulated Java virtual machine per rank thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "jhpc/minijvm/heap.hpp"
#include "jhpc/minijvm/jarray.hpp"
#include "jhpc/minijvm/jtypes.hpp"

namespace jhpc::minijvm {

class JniEnv;

/// JVM-level configuration.
struct JvmConfig {
  /// Managed heap reservation in bytes (split into two semispaces).
  std::size_t heap_bytes = 64 * 1024 * 1024;
  /// Modelled cost of one Java->native (JNI) method transition,
  /// nanoseconds: argument marshalling, local-reference frame setup and
  /// the JIT->native call sequence. The paper's Figure 11 overhead
  /// ("in the ballpark of 1 microsecond" per one-way message, i.e. two
  /// crossings) emerges from this plus the real C++-layer work per call.
  std::int64_t jni_crossing_ns = 400;

  /// Read JHPC_HEAP_MB / JHPC_JNI_CROSS_NS environment overrides.
  static JvmConfig from_env();
};

/// One simulated JVM: a managed heap plus its JNI environment. In the
/// paper's deployment every MPI rank is a separate JVM process; here every
/// rank thread constructs its own Jvm. Not thread-safe across ranks by
/// design.
class Jvm {
 public:
  explicit Jvm(JvmConfig config = JvmConfig::from_env());
  ~Jvm();
  Jvm(const Jvm&) = delete;
  Jvm& operator=(const Jvm&) = delete;

  /// Allocate a managed array of `n` elements (zero-initialised, like
  /// Java `new T[n]`).
  template <JavaPrimitive T>
  JArray<T> new_array(std::size_t n) {
    const int h = heap_->allocate(n * sizeof(T));
    return JArray<T>(heap_.get(), h, n);
  }

  /// Force a collection (System.gc() with -XX:+ExplicitGCInvokesFull, in
  /// effect). Returns false when active critical sections block it.
  bool gc() { return heap_->collect(); }

  ManagedHeap& heap() { return *heap_; }
  const GcStats& stats() const { return heap_->stats(); }
  JniEnv& jni() { return *jni_; }
  const JvmConfig& config() const { return config_; }

 private:
  JvmConfig config_;
  std::unique_ptr<ManagedHeap> heap_;
  std::unique_ptr<JniEnv> jni_;
};

}  // namespace jhpc::minijvm
