// A managed heap with a semispace copying collector that REALLY moves
// objects.
//
// Everything the paper discusses about Java arrays vs direct ByteBuffers
// is a consequence of one JVM property: the garbage collector relocates
// heap objects, so raw pointers into the heap go stale. This heap
// reproduces that property honestly — handle-addressed storage, a copying
// collection that changes every object's address, and critical-section
// pinning that blocks collection (the GetPrimitiveArrayCritical hazard).
//
// One heap belongs to one rank thread ("one JVM per MPI process" in the
// paper's deployment); it is intentionally not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace jhpc::minijvm {

/// Collector and allocation statistics (all monotonically increasing,
/// except live_bytes).
struct GcStats {
  std::uint64_t allocations = 0;        ///< new_array/object count
  std::uint64_t allocated_bytes = 0;    ///< total bytes ever allocated
  std::uint64_t collections = 0;        ///< completed GC cycles
  std::uint64_t blocked_collections = 0;///< GCs skipped due to active pins
  std::uint64_t objects_moved = 0;      ///< objects relocated by GC
  std::uint64_t bytes_copied = 0;       ///< bytes relocated by GC
  std::size_t live_bytes = 0;           ///< currently reachable bytes
};

/// Thrown when an allocation cannot be satisfied even after collection.
class OutOfMemoryError;

/// Handle-addressed semispace heap.
///
/// Objects are referred to by integer handles; the current address of a
/// handle must be re-queried after any allocation (which may collect) —
/// exactly the discipline JNI imposes on native code.
class ManagedHeap {
 public:
  /// `heap_bytes` is the total reservation; each semispace gets half.
  explicit ManagedHeap(std::size_t heap_bytes);
  ~ManagedHeap();
  ManagedHeap(const ManagedHeap&) = delete;
  ManagedHeap& operator=(const ManagedHeap&) = delete;

  /// Allocate a zero-initialised object of `bytes` bytes; returns its
  /// handle. May trigger a collection; throws OutOfMemoryError when the
  /// live set does not fit.
  int allocate(std::size_t bytes);

  /// Release a handle (the object becomes garbage for the next GC).
  void release(int handle);

  /// Current address of a live handle. INVALIDATED by any collection.
  std::byte* address(int handle) const;

  /// Unchecked variant for validated hot paths (JArray element access —
  /// the JIT-compiled array load of a real JVM). The handle must be live.
  std::byte* address_fast(int handle) const noexcept {
    return slots_[static_cast<std::size_t>(handle)].addr;
  }

  /// Object size in bytes.
  std::size_t size_of(int handle) const;

  /// Enter/leave a critical section on `handle`
  /// (GetPrimitiveArrayCritical semantics): while any pin is active the
  /// collector must not run. Pins nest.
  void pin(int handle);
  void unpin(int handle);
  bool is_pinned(int handle) const;
  int active_pins() const { return active_pins_; }

  /// Force a collection. Returns true if it ran; false if active pins
  /// blocked it (recorded in stats().blocked_collections).
  bool collect();

  const GcStats& stats() const { return stats_; }

  /// Capacity of one semispace (the usable heap size).
  std::size_t semispace_bytes() const { return semispace_bytes_; }

 private:
  struct Slot {
    std::byte* addr = nullptr;
    std::size_t bytes = 0;
    int pin_count = 0;
    bool live = false;
  };

  const Slot& checked_slot(int handle) const;
  std::byte* bump_allocate(std::size_t bytes);

  std::size_t semispace_bytes_;
  // Uninitialised reservations: pages are only touched (and thus only
  // really allocated by the OS) when objects live there, so many
  // simulated JVMs can coexist cheaply.
  std::unique_ptr<std::byte[]> space_a_;
  std::unique_ptr<std::byte[]> space_b_;
  std::byte* from_base_;
  std::byte* to_base_;
  std::size_t bump_ = 0;

  std::vector<Slot> slots_;
  std::vector<int> free_slots_;
  int active_pins_ = 0;
  GcStats stats_;
};

}  // namespace jhpc::minijvm

#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {

/// The managed heap is exhausted (live data exceeds a semispace).
class OutOfMemoryError : public jhpc::Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

}  // namespace jhpc::minijvm
