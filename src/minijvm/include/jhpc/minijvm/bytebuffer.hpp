// java.nio ByteBuffer emulation: direct and heap variants.
//
// Direct buffers live in native (malloc) memory outside the managed heap:
// their address is stable for the buffer's lifetime, which is exactly why
// the Java MPI bindings can hand them to native MPI without a copy. Heap
// buffers wrap a managed byte array and move with the collector.
//
// Element accessors follow java.nio semantics: position/limit state
// machine, bounds checks on every access, byte-order-aware assembly
// (default BIG_ENDIAN, as in Java). That per-element machinery is the
// structural overhead that makes ByteBuffer reads/writes slower than raw
// array accesses — the effect the paper measures in Figure 18.
#pragma once

#include <cstddef>
#include <memory>

#include "jhpc/minijvm/jarray.hpp"
#include "jhpc/minijvm/jtypes.hpp"
#include "jhpc/support/byte_order.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {

using jhpc::ByteOrder;

class Jvm;

/// Thrown on buffer under/overflow and invalid marks, mirroring the
/// java.nio exception family.
class BufferError : public jhpc::Error {
 public:
  explicit BufferError(const std::string& what) : Error(what) {}
};

/// A byte buffer with java.nio semantics (a null default-constructed
/// state is provided for convenience; all accessors reject it).
class ByteBuffer {
 public:
  ByteBuffer() = default;

  /// Allocate a direct buffer (outside any managed heap). Mirrors
  /// ByteBuffer.allocateDirect — deliberately more expensive to create
  /// than a heap buffer, never moved by GC.
  static ByteBuffer allocate_direct(std::size_t capacity);

  /// Allocate a non-direct buffer backed by a managed byte[] in `jvm`.
  static ByteBuffer allocate(Jvm& jvm, std::size_t capacity);

  /// Wrap an existing managed byte array (ByteBuffer.wrap).
  static ByteBuffer wrap(JArray<jbyte> array);

  bool is_null() const { return direct_ == nullptr && heap_.is_null(); }
  bool is_direct() const { return direct_ != nullptr; }

  // --- java.nio.Buffer state machine -------------------------------------
  std::size_t capacity() const { return capacity_; }
  std::size_t position() const { return position_; }
  std::size_t limit() const { return limit_; }
  std::size_t remaining() const { return limit_ - position_; }
  bool has_remaining() const { return position_ < limit_; }

  ByteBuffer& position(std::size_t p);
  ByteBuffer& limit(std::size_t n);
  ByteBuffer& clear();    ///< position=0, limit=capacity, mark discarded
  ByteBuffer& flip();     ///< limit=position, position=0
  ByteBuffer& rewind();   ///< position=0
  ByteBuffer& mark();
  ByteBuffer& reset();    ///< position=mark; throws without a mark

  ByteOrder order() const { return order_; }
  ByteBuffer& order(ByteOrder o) {
    order_ = o;
    return *this;
  }

  // --- Relative accessors (advance position) ------------------------------
  ByteBuffer& put(jbyte v);
  jbyte get();
  ByteBuffer& put_char(jchar v);
  jchar get_char();
  ByteBuffer& put_short(jshort v);
  jshort get_short();
  ByteBuffer& put_int(jint v);
  jint get_int();
  ByteBuffer& put_long(jlong v);
  jlong get_long();
  ByteBuffer& put_float(jfloat v);
  jfloat get_float();
  ByteBuffer& put_double(jdouble v);
  jdouble get_double();

  // --- Absolute accessors ---------------------------------------------------
  ByteBuffer& put(std::size_t index, jbyte v);
  jbyte get(std::size_t index) const;
  ByteBuffer& put_int(std::size_t index, jint v);
  jint get_int(std::size_t index) const;
  ByteBuffer& put_long(std::size_t index, jlong v);
  jlong get_long(std::size_t index) const;
  ByteBuffer& put_double(std::size_t index, jdouble v);
  jdouble get_double(std::size_t index) const;

  // --- Bulk transfers ----------------------------------------------------------
  /// Copy `n` raw bytes into the buffer at position (relative bulk put).
  ByteBuffer& put_bytes(const void* src, std::size_t n);
  /// Copy `n` raw bytes out of the buffer at position.
  ByteBuffer& get_bytes(void* dst, std::size_t n);

  // --- Views ---------------------------------------------------------------------
  /// New buffer sharing content [position, limit) with independent state.
  ByteBuffer slice() const;
  /// New buffer sharing all content with independent position/limit/mark.
  ByteBuffer duplicate() const;

  /// Raw storage address of element `index` relative to this view's base.
  /// For direct buffers this is stable (what GetDirectBufferAddress
  /// exposes); for heap buffers it is GC-movable — the JNI emulation
  /// refuses to expose it. Library-internal and test use only.
  std::byte* storage_address(std::size_t index = 0) const;

 private:
  // Per-element address computation + bounds check shared by accessors.
  std::byte* at(std::size_t index, std::size_t width) const;
  std::byte* advance(std::size_t width);

  template <typename T>
  ByteBuffer& put_value(T v) {
    jhpc::store_ordered(advance(sizeof(T)), v, order_);
    return *this;
  }
  template <typename T>
  T get_value() {
    return jhpc::load_ordered<T>(advance(sizeof(T)), order_);
  }
  template <typename T>
  ByteBuffer& put_value_at(std::size_t index, T v) {
    jhpc::store_ordered(at(index, sizeof(T)), v, order_);
    return *this;
  }
  template <typename T>
  T get_value_at(std::size_t index) const {
    return jhpc::load_ordered<T>(at(index, sizeof(T)), order_);
  }

  // Direct storage (shared among slices/duplicates) or managed array.
  std::shared_ptr<std::byte[]> direct_;
  JArray<jbyte> heap_;
  std::size_t base_ = 0;  // view offset into the backing storage

  std::size_t capacity_ = 0;
  std::size_t position_ = 0;
  std::size_t limit_ = 0;
  std::ptrdiff_t mark_ = -1;
  ByteOrder order_ = ByteOrder::kBigEndian;
};

}  // namespace jhpc::minijvm
