#include "jhpc/minijvm/heap.hpp"

#include <cstring>

#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {
namespace {
constexpr std::size_t kAlign = 16;

std::size_t align_up(std::size_t n) {
  return (n + kAlign - 1) & ~(kAlign - 1);
}
}  // namespace

ManagedHeap::ManagedHeap(std::size_t heap_bytes)
    : semispace_bytes_(align_up(heap_bytes / 2)) {
  JHPC_REQUIRE(heap_bytes >= 4 * kAlign, "heap too small");
  space_a_ = std::unique_ptr<std::byte[]>(new std::byte[semispace_bytes_]);
  space_b_ = std::unique_ptr<std::byte[]>(new std::byte[semispace_bytes_]);
  from_base_ = space_a_.get();
  to_base_ = space_b_.get();
}

ManagedHeap::~ManagedHeap() = default;

const ManagedHeap::Slot& ManagedHeap::checked_slot(int handle) const {
  JHPC_REQUIRE(handle >= 0 &&
                   static_cast<std::size_t>(handle) < slots_.size() &&
                   slots_[static_cast<std::size_t>(handle)].live,
               "invalid or dead heap handle");
  return slots_[static_cast<std::size_t>(handle)];
}

std::byte* ManagedHeap::bump_allocate(std::size_t bytes) {
  const std::size_t need = align_up(bytes);
  if (bump_ + need > semispace_bytes_) return nullptr;
  std::byte* p = from_base_ + bump_;
  bump_ += need;
  return p;
}

int ManagedHeap::allocate(std::size_t bytes) {
  std::byte* p = bump_allocate(bytes);
  if (p == nullptr) {
    if (!collect()) {
      throw OutOfMemoryError(
          "managed heap exhausted while a critical section pins the heap "
          "(GetPrimitiveArrayCritical held too long)");
    }
    p = bump_allocate(bytes);
    if (p == nullptr) {
      throw OutOfMemoryError("managed heap exhausted: live set + " +
                             std::to_string(bytes) +
                             " bytes exceeds a semispace of " +
                             std::to_string(semispace_bytes_) + " bytes");
    }
  }
  std::memset(p, 0, bytes);

  int handle;
  if (!free_slots_.empty()) {
    handle = free_slots_.back();
    free_slots_.pop_back();
  } else {
    handle = static_cast<int>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[static_cast<std::size_t>(handle)];
  s.addr = p;
  s.bytes = bytes;
  s.pin_count = 0;
  s.live = true;

  ++stats_.allocations;
  stats_.allocated_bytes += bytes;
  stats_.live_bytes += bytes;
  return handle;
}

void ManagedHeap::release(int handle) {
  Slot& s = const_cast<Slot&>(checked_slot(handle));
  JHPC_REQUIRE(s.pin_count == 0, "releasing a pinned object");
  stats_.live_bytes -= s.bytes;
  s.live = false;
  s.addr = nullptr;
  free_slots_.push_back(handle);
}

std::byte* ManagedHeap::address(int handle) const {
  return checked_slot(handle).addr;
}

std::size_t ManagedHeap::size_of(int handle) const {
  return checked_slot(handle).bytes;
}

void ManagedHeap::pin(int handle) {
  Slot& s = const_cast<Slot&>(checked_slot(handle));
  ++s.pin_count;
  ++active_pins_;
}

void ManagedHeap::unpin(int handle) {
  Slot& s = const_cast<Slot&>(checked_slot(handle));
  JHPC_REQUIRE(s.pin_count > 0, "unpin without matching pin");
  --s.pin_count;
  --active_pins_;
}

bool ManagedHeap::is_pinned(int handle) const {
  return checked_slot(handle).pin_count > 0;
}

bool ManagedHeap::collect() {
  if (active_pins_ > 0) {
    // A critical section is active: the collector must not move anything.
    ++stats_.blocked_collections;
    return false;
  }
  // Copy every live object into to-space and retarget its slot. Addresses
  // change on every collection (semispace swap), so stale raw pointers
  // are genuinely invalid afterwards.
  std::size_t to_bump = 0;
  for (Slot& s : slots_) {
    if (!s.live) continue;
    std::byte* dst = to_base_ + to_bump;
    std::memcpy(dst, s.addr, s.bytes);
    s.addr = dst;
    to_bump += align_up(s.bytes);
    ++stats_.objects_moved;
    stats_.bytes_copied += s.bytes;
  }
  std::swap(from_base_, to_base_);
  bump_ = to_bump;
  ++stats_.collections;
  return true;
}

}  // namespace jhpc::minijvm
