#include "jhpc/minijvm/jvm.hpp"

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/support/env.hpp"

namespace jhpc::minijvm {

JvmConfig JvmConfig::from_env() {
  JvmConfig cfg;
  cfg.heap_bytes = static_cast<std::size_t>(env_int64(
                       "JHPC_HEAP_MB",
                       static_cast<std::int64_t>(cfg.heap_bytes >> 20)))
                   << 20;
  cfg.jni_crossing_ns = env_int64("JHPC_JNI_CROSS_NS", cfg.jni_crossing_ns);
  return cfg;
}

Jvm::Jvm(JvmConfig config)
    : config_(config),
      heap_(std::make_unique<ManagedHeap>(config.heap_bytes)),
      jni_(std::make_unique<JniEnv>(*this, config.jni_crossing_ns)) {}

Jvm::~Jvm() = default;

JniEnv::~JniEnv() {
  // Leaked Get<Type>ArrayElements copies are reclaimed here; tests check
  // outstanding_copies() to catch the leak itself.
  for (auto& [ptr, copy] : copies_) ::operator delete(ptr);
}

}  // namespace jhpc::minijvm
