// An mpiJava 1.2 / MPJ API compatibility adapter over MVAPICH2-J.
//
// The paper (Sections I, II-C) recounts the API history: the Java Grande
// Forum's mpiJava 1.2 API and its MPJ successor — Capitalised method
// names, Java arrays only, and an `offset` argument on every
// communication primitive — were what mpiJava, MPJ Express and FastMPJ
// implemented, and what legacy Java HPC codes (e.g. NPB-MPJ) are written
// against. The Open MPI Java API that MVAPICH2-J adopts dropped the
// offset argument, which "mandates modifying Java HPC applications".
//
// This adapter restores the old surface on top of the new bindings, so a
// legacy-style code runs unchanged: point-to-point maps directly onto
// MVAPICH2-J's offset extension (zero extra cost — the buffering layer
// stages exactly the sub-range); collectives, whose modern API has no
// offset, are adapted via a staged sub-array copy when offset != 0.
#pragma once

#include "jhpc/mv2j/env.hpp"

namespace jhpc::mpj {

using minijvm::JArray;
using minijvm::JavaPrimitive;
using mv2j::Datatype;
using mv2j::Op;

/// mpiJava 1.2 re-exports (MPI.BYTE ... MPI.DOUBLE, MPI.SUM ...).
inline const Datatype& BYTE = mv2j::BYTE;
inline const Datatype& BOOLEAN = mv2j::BOOLEAN;
inline const Datatype& CHAR = mv2j::CHAR;
inline const Datatype& SHORT = mv2j::SHORT;
inline const Datatype& INT = mv2j::INT;
inline const Datatype& LONG = mv2j::LONG;
inline const Datatype& FLOAT = mv2j::FLOAT;
inline const Datatype& DOUBLE = mv2j::DOUBLE;
inline constexpr Op SUM = mv2j::SUM;
inline constexpr Op PROD = mv2j::PROD;
inline constexpr Op MIN = mv2j::MIN;
inline constexpr Op MAX = mv2j::MAX;
inline constexpr int ANY_SOURCE = mv2j::ANY_SOURCE;
inline constexpr int ANY_TAG = mv2j::ANY_TAG;

/// mpiJava 1.2 Status: Get_count / source / tag accessors.
class Status {
 public:
  Status() = default;
  explicit Status(const mv2j::Status& s) : s_(s) {}
  int Get_count(const Datatype& type) const { return s_.getCount(type); }
  int Source() const { return s_.getSource(); }
  int Tag() const { return s_.getTag(); }

 private:
  mv2j::Status s_;
};

/// mpiJava 1.2 Request.
class Request {
 public:
  Request() = default;
  explicit Request(mv2j::Request r) : r_(std::move(r)) {}
  Status Wait() { return Status(r_.waitFor()); }
  bool Test(Status* status = nullptr) {
    mv2j::Status s;
    if (!r_.test(&s)) return false;
    if (status != nullptr) *status = Status(s);
    return true;
  }

 private:
  mv2j::Request r_;
};

/// The mpiJava 1.2 communicator surface (Java arrays + offsets only; the
/// old API predates NIO buffers).
class Comm {
 public:
  explicit Comm(mv2j::Comm modern, mv2j::Env& env)
      : modern_(modern), env_(&env) {}

  int Rank() const { return modern_.getRank(); }
  int Size() const { return modern_.getSize(); }

  // --- Point-to-point (all with the classic offset argument) --------------
  template <JavaPrimitive T>
  void Send(const JArray<T>& buf, int offset, int count,
            const Datatype& type, int dest, int tag) const {
    modern_.send(buf, offset, count, type, dest, tag);
  }
  template <JavaPrimitive T>
  Status Recv(JArray<T>& buf, int offset, int count, const Datatype& type,
              int source, int tag) const {
    return Status(modern_.recv(buf, offset, count, type, source, tag));
  }
  template <JavaPrimitive T>
  Request Isend(const JArray<T>& buf, int offset, int count,
                const Datatype& type, int dest, int tag) const {
    return Request(modern_.iSend(buf, offset, count, type, dest, tag));
  }
  template <JavaPrimitive T>
  Request Irecv(JArray<T>& buf, int offset, int count, const Datatype& type,
                int source, int tag) const {
    return Request(modern_.iRecv(buf, offset, count, type, source, tag));
  }
  Status Probe(int source, int tag) const {
    return Status(modern_.probe(source, tag));
  }

  // --- Collectives (offset adapted via sub-array staging) ------------------
  void Barrier() const { modern_.barrier(); }

  template <JavaPrimitive T>
  void Bcast(JArray<T>& buf, int offset, int count, const Datatype& type,
             int root) const {
    if (offset == 0) {
      modern_.bcast(buf, count, type, root);
      return;
    }
    JArray<T> tmp = sub_array(buf, offset, count);
    modern_.bcast(tmp, count, type, root);
    write_back(buf, offset, count, tmp);
  }

  template <JavaPrimitive T>
  void Reduce(const JArray<T>& sendbuf, int sendoffset, JArray<T>& recvbuf,
              int recvoffset, int count, const Datatype& type, const Op& op,
              int root) const {
    JArray<T> stmp = sub_array(sendbuf, sendoffset, count);
    JArray<T> rtmp = env_->newArray<T>(static_cast<std::size_t>(count));
    modern_.reduce(stmp, rtmp, count, type, op, root);
    if (Rank() == root) write_back(recvbuf, recvoffset, count, rtmp);
  }

  template <JavaPrimitive T>
  void Allreduce(const JArray<T>& sendbuf, int sendoffset,
                 JArray<T>& recvbuf, int recvoffset, int count,
                 const Datatype& type, const Op& op) const {
    JArray<T> stmp = sub_array(sendbuf, sendoffset, count);
    JArray<T> rtmp = env_->newArray<T>(static_cast<std::size_t>(count));
    modern_.allReduce(stmp, rtmp, count, type, op);
    write_back(recvbuf, recvoffset, count, rtmp);
  }

  template <JavaPrimitive T>
  void Gather(const JArray<T>& sendbuf, int sendoffset, int sendcount,
              JArray<T>& recvbuf, int recvoffset, const Datatype& type,
              int root) const {
    JArray<T> stmp = sub_array(sendbuf, sendoffset, sendcount);
    JArray<T> rtmp = env_->newArray<T>(
        static_cast<std::size_t>(sendcount) *
        static_cast<std::size_t>(Size()));
    modern_.gather(stmp, sendcount, type, rtmp, root);
    if (Rank() == root)
      write_back(recvbuf, recvoffset, sendcount * Size(), rtmp);
  }

  template <JavaPrimitive T>
  void Alltoall(const JArray<T>& sendbuf, int sendoffset, int count,
                JArray<T>& recvbuf, int recvoffset,
                const Datatype& type) const {
    const int total = count * Size();
    JArray<T> stmp = sub_array(sendbuf, sendoffset, total);
    JArray<T> rtmp = env_->newArray<T>(static_cast<std::size_t>(total));
    modern_.allToAll(stmp, count, type, rtmp);
    write_back(recvbuf, recvoffset, total, rtmp);
  }

  /// The wrapped modern communicator (escape hatch for mixed code).
  const mv2j::Comm& modern() const { return modern_; }

 private:
  template <JavaPrimitive T>
  JArray<T> sub_array(const JArray<T>& src, int offset, int count) const {
    JHPC_REQUIRE(offset >= 0 && count >= 0 &&
                     static_cast<std::size_t>(offset) +
                             static_cast<std::size_t>(count) <=
                         src.length(),
                 "MPJ adapter: offset/count out of range");
    auto tmp = env_->newArray<T>(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
      tmp[static_cast<std::size_t>(i)] =
          src[static_cast<std::size_t>(offset + i)];
    return tmp;
  }
  template <JavaPrimitive T>
  void write_back(JArray<T>& dst, int offset, int count,
                  const JArray<T>& tmp) const {
    JHPC_REQUIRE(offset >= 0 &&
                     static_cast<std::size_t>(offset) +
                             static_cast<std::size_t>(count) <=
                         dst.length(),
                 "MPJ adapter: offset/count out of range");
    for (int i = 0; i < count; ++i)
      dst[static_cast<std::size_t>(offset + i)] =
          tmp[static_cast<std::size_t>(i)];
  }

  mv2j::Comm modern_;
  mv2j::Env* env_;
};

/// The legacy entry point: wrap a modern environment.
inline Comm COMM_WORLD(mv2j::Env& env) {
  return Comm(env.COMM_WORLD(), env);
}

}  // namespace jhpc::mpj
