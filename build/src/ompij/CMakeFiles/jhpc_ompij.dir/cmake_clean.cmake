file(REMOVE_RECURSE
  "CMakeFiles/jhpc_ompij.dir/comm.cpp.o"
  "CMakeFiles/jhpc_ompij.dir/comm.cpp.o.d"
  "CMakeFiles/jhpc_ompij.dir/comm_array.cpp.o"
  "CMakeFiles/jhpc_ompij.dir/comm_array.cpp.o.d"
  "CMakeFiles/jhpc_ompij.dir/comm_vectored.cpp.o"
  "CMakeFiles/jhpc_ompij.dir/comm_vectored.cpp.o.d"
  "libjhpc_ompij.a"
  "libjhpc_ompij.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_ompij.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
