file(REMOVE_RECURSE
  "libjhpc_ompij.a"
)
