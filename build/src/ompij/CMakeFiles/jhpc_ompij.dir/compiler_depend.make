# Empty compiler generated dependencies file for jhpc_ompij.
# This may be replaced when dependencies are built.
