# Empty dependencies file for jhpc_minimpi.
# This may be replaced when dependencies are built.
