file(REMOVE_RECURSE
  "CMakeFiles/jhpc_minimpi.dir/cart.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/cart.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/coll_basic.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/coll_basic.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/coll_common.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/coll_common.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/coll_mv2.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/coll_mv2.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/comm.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/comm.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/datatype.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/datatype.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/group.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/group.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/op.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/op.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/request.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/request.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/transport.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/transport.cpp.o.d"
  "CMakeFiles/jhpc_minimpi.dir/universe.cpp.o"
  "CMakeFiles/jhpc_minimpi.dir/universe.cpp.o.d"
  "libjhpc_minimpi.a"
  "libjhpc_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
