file(REMOVE_RECURSE
  "libjhpc_minimpi.a"
)
