
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/cart.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/cart.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/cart.cpp.o.d"
  "/root/repo/src/minimpi/coll_basic.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/coll_basic.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/coll_basic.cpp.o.d"
  "/root/repo/src/minimpi/coll_common.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/coll_common.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/coll_common.cpp.o.d"
  "/root/repo/src/minimpi/coll_mv2.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/coll_mv2.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/coll_mv2.cpp.o.d"
  "/root/repo/src/minimpi/comm.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/comm.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/comm.cpp.o.d"
  "/root/repo/src/minimpi/datatype.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/datatype.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/datatype.cpp.o.d"
  "/root/repo/src/minimpi/group.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/group.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/group.cpp.o.d"
  "/root/repo/src/minimpi/op.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/op.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/op.cpp.o.d"
  "/root/repo/src/minimpi/request.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/request.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/request.cpp.o.d"
  "/root/repo/src/minimpi/transport.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/transport.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/transport.cpp.o.d"
  "/root/repo/src/minimpi/universe.cpp" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/universe.cpp.o" "gcc" "src/minimpi/CMakeFiles/jhpc_minimpi.dir/universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jhpc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/jhpc_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
