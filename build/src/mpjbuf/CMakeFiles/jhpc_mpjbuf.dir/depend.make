# Empty dependencies file for jhpc_mpjbuf.
# This may be replaced when dependencies are built.
