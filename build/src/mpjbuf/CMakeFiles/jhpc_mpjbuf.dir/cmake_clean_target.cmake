file(REMOVE_RECURSE
  "libjhpc_mpjbuf.a"
)
