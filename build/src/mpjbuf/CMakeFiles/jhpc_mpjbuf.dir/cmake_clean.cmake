file(REMOVE_RECURSE
  "CMakeFiles/jhpc_mpjbuf.dir/buffer.cpp.o"
  "CMakeFiles/jhpc_mpjbuf.dir/buffer.cpp.o.d"
  "CMakeFiles/jhpc_mpjbuf.dir/buffer_factory.cpp.o"
  "CMakeFiles/jhpc_mpjbuf.dir/buffer_factory.cpp.o.d"
  "libjhpc_mpjbuf.a"
  "libjhpc_mpjbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_mpjbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
