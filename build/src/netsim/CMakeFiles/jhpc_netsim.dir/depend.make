# Empty dependencies file for jhpc_netsim.
# This may be replaced when dependencies are built.
