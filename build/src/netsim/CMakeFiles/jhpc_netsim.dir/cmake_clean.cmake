file(REMOVE_RECURSE
  "CMakeFiles/jhpc_netsim.dir/fabric.cpp.o"
  "CMakeFiles/jhpc_netsim.dir/fabric.cpp.o.d"
  "libjhpc_netsim.a"
  "libjhpc_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
