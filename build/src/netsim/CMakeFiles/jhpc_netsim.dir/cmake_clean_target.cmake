file(REMOVE_RECURSE
  "libjhpc_netsim.a"
)
