file(REMOVE_RECURSE
  "libjhpc_minijvm.a"
)
