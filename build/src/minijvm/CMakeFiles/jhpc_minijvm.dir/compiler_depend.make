# Empty compiler generated dependencies file for jhpc_minijvm.
# This may be replaced when dependencies are built.
