file(REMOVE_RECURSE
  "CMakeFiles/jhpc_minijvm.dir/bytebuffer.cpp.o"
  "CMakeFiles/jhpc_minijvm.dir/bytebuffer.cpp.o.d"
  "CMakeFiles/jhpc_minijvm.dir/direct_memory.cpp.o"
  "CMakeFiles/jhpc_minijvm.dir/direct_memory.cpp.o.d"
  "CMakeFiles/jhpc_minijvm.dir/heap.cpp.o"
  "CMakeFiles/jhpc_minijvm.dir/heap.cpp.o.d"
  "CMakeFiles/jhpc_minijvm.dir/jvm.cpp.o"
  "CMakeFiles/jhpc_minijvm.dir/jvm.cpp.o.d"
  "libjhpc_minijvm.a"
  "libjhpc_minijvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_minijvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
