
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minijvm/bytebuffer.cpp" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/bytebuffer.cpp.o" "gcc" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/bytebuffer.cpp.o.d"
  "/root/repo/src/minijvm/direct_memory.cpp" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/direct_memory.cpp.o" "gcc" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/direct_memory.cpp.o.d"
  "/root/repo/src/minijvm/heap.cpp" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/heap.cpp.o" "gcc" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/heap.cpp.o.d"
  "/root/repo/src/minijvm/jvm.cpp" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/jvm.cpp.o" "gcc" "src/minijvm/CMakeFiles/jhpc_minijvm.dir/jvm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jhpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
