# Empty compiler generated dependencies file for jhpc_support.
# This may be replaced when dependencies are built.
