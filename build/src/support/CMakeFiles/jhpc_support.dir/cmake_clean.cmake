file(REMOVE_RECURSE
  "CMakeFiles/jhpc_support.dir/clock.cpp.o"
  "CMakeFiles/jhpc_support.dir/clock.cpp.o.d"
  "CMakeFiles/jhpc_support.dir/env.cpp.o"
  "CMakeFiles/jhpc_support.dir/env.cpp.o.d"
  "CMakeFiles/jhpc_support.dir/error.cpp.o"
  "CMakeFiles/jhpc_support.dir/error.cpp.o.d"
  "CMakeFiles/jhpc_support.dir/sizes.cpp.o"
  "CMakeFiles/jhpc_support.dir/sizes.cpp.o.d"
  "CMakeFiles/jhpc_support.dir/stats.cpp.o"
  "CMakeFiles/jhpc_support.dir/stats.cpp.o.d"
  "CMakeFiles/jhpc_support.dir/table.cpp.o"
  "CMakeFiles/jhpc_support.dir/table.cpp.o.d"
  "libjhpc_support.a"
  "libjhpc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
