file(REMOVE_RECURSE
  "libjhpc_support.a"
)
