file(REMOVE_RECURSE
  "CMakeFiles/ombj.dir/runner_main.cpp.o"
  "CMakeFiles/ombj.dir/runner_main.cpp.o.d"
  "ombj"
  "ombj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
