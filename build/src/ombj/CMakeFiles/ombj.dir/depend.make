# Empty dependencies file for ombj.
# This may be replaced when dependencies are built.
