file(REMOVE_RECURSE
  "libjhpc_ombj.a"
)
