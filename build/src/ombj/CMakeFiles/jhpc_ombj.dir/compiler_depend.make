# Empty compiler generated dependencies file for jhpc_ombj.
# This may be replaced when dependencies are built.
