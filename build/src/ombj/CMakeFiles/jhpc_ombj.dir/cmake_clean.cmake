file(REMOVE_RECURSE
  "CMakeFiles/jhpc_ombj.dir/benchmarks.cpp.o"
  "CMakeFiles/jhpc_ombj.dir/benchmarks.cpp.o.d"
  "CMakeFiles/jhpc_ombj.dir/benchmarks_native.cpp.o"
  "CMakeFiles/jhpc_ombj.dir/benchmarks_native.cpp.o.d"
  "CMakeFiles/jhpc_ombj.dir/harness.cpp.o"
  "CMakeFiles/jhpc_ombj.dir/harness.cpp.o.d"
  "CMakeFiles/jhpc_ombj.dir/options.cpp.o"
  "CMakeFiles/jhpc_ombj.dir/options.cpp.o.d"
  "libjhpc_ombj.a"
  "libjhpc_ombj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_ombj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
