file(REMOVE_RECURSE
  "libjhpc_mv2j.a"
)
