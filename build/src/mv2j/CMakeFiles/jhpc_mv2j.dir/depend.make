# Empty dependencies file for jhpc_mv2j.
# This may be replaced when dependencies are built.
