file(REMOVE_RECURSE
  "CMakeFiles/jhpc_mv2j.dir/comm.cpp.o"
  "CMakeFiles/jhpc_mv2j.dir/comm.cpp.o.d"
  "CMakeFiles/jhpc_mv2j.dir/comm_array.cpp.o"
  "CMakeFiles/jhpc_mv2j.dir/comm_array.cpp.o.d"
  "CMakeFiles/jhpc_mv2j.dir/env.cpp.o"
  "CMakeFiles/jhpc_mv2j.dir/env.cpp.o.d"
  "CMakeFiles/jhpc_mv2j.dir/request.cpp.o"
  "CMakeFiles/jhpc_mv2j.dir/request.cpp.o.d"
  "libjhpc_mv2j.a"
  "libjhpc_mv2j.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhpc_mv2j.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
