file(REMOVE_RECURSE
  "CMakeFiles/minimpi_stress_test.dir/minimpi_stress_test.cpp.o"
  "CMakeFiles/minimpi_stress_test.dir/minimpi_stress_test.cpp.o.d"
  "minimpi_stress_test"
  "minimpi_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
