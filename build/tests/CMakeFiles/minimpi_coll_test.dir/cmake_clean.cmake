file(REMOVE_RECURSE
  "CMakeFiles/minimpi_coll_test.dir/minimpi_coll_test.cpp.o"
  "CMakeFiles/minimpi_coll_test.dir/minimpi_coll_test.cpp.o.d"
  "minimpi_coll_test"
  "minimpi_coll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_coll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
