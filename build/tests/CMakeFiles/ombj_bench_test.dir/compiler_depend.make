# Empty compiler generated dependencies file for ombj_bench_test.
# This may be replaced when dependencies are built.
