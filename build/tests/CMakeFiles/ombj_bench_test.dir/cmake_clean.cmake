file(REMOVE_RECURSE
  "CMakeFiles/ombj_bench_test.dir/ombj_bench_test.cpp.o"
  "CMakeFiles/ombj_bench_test.dir/ombj_bench_test.cpp.o.d"
  "ombj_bench_test"
  "ombj_bench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombj_bench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
