file(REMOVE_RECURSE
  "CMakeFiles/mpj_test.dir/mpj_test.cpp.o"
  "CMakeFiles/mpj_test.dir/mpj_test.cpp.o.d"
  "mpj_test"
  "mpj_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
