# Empty dependencies file for mpj_test.
# This may be replaced when dependencies are built.
