# Empty compiler generated dependencies file for minijvm_views_test.
# This may be replaced when dependencies are built.
