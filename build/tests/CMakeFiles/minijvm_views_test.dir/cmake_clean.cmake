file(REMOVE_RECURSE
  "CMakeFiles/minijvm_views_test.dir/minijvm_views_test.cpp.o"
  "CMakeFiles/minijvm_views_test.dir/minijvm_views_test.cpp.o.d"
  "minijvm_views_test"
  "minijvm_views_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minijvm_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
