file(REMOVE_RECURSE
  "CMakeFiles/minijvm_region_test.dir/minijvm_region_test.cpp.o"
  "CMakeFiles/minijvm_region_test.dir/minijvm_region_test.cpp.o.d"
  "minijvm_region_test"
  "minijvm_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minijvm_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
