# Empty compiler generated dependencies file for minijvm_region_test.
# This may be replaced when dependencies are built.
