# Empty compiler generated dependencies file for minijvm_heap_test.
# This may be replaced when dependencies are built.
