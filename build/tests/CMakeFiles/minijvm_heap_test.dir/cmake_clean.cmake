file(REMOVE_RECURSE
  "CMakeFiles/minijvm_heap_test.dir/minijvm_heap_test.cpp.o"
  "CMakeFiles/minijvm_heap_test.dir/minijvm_heap_test.cpp.o.d"
  "minijvm_heap_test"
  "minijvm_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minijvm_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
