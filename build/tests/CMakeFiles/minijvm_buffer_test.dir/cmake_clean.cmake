file(REMOVE_RECURSE
  "CMakeFiles/minijvm_buffer_test.dir/minijvm_buffer_test.cpp.o"
  "CMakeFiles/minijvm_buffer_test.dir/minijvm_buffer_test.cpp.o.d"
  "minijvm_buffer_test"
  "minijvm_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minijvm_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
