# Empty dependencies file for minijvm_buffer_test.
# This may be replaced when dependencies are built.
