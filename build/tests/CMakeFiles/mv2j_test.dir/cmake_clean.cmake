file(REMOVE_RECURSE
  "CMakeFiles/mv2j_test.dir/mv2j_test.cpp.o"
  "CMakeFiles/mv2j_test.dir/mv2j_test.cpp.o.d"
  "mv2j_test"
  "mv2j_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2j_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
