# Empty dependencies file for mv2j_test.
# This may be replaced when dependencies are built.
