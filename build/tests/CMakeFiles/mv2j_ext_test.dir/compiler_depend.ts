# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mv2j_ext_test.
