# Empty compiler generated dependencies file for mv2j_ext_test.
# This may be replaced when dependencies are built.
