file(REMOVE_RECURSE
  "CMakeFiles/ompij_test.dir/ompij_test.cpp.o"
  "CMakeFiles/ompij_test.dir/ompij_test.cpp.o.d"
  "ompij_test"
  "ompij_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompij_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
