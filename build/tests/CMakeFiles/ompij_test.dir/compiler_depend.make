# Empty compiler generated dependencies file for ompij_test.
# This may be replaced when dependencies are built.
