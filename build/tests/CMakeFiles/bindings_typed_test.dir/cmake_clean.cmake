file(REMOVE_RECURSE
  "CMakeFiles/bindings_typed_test.dir/bindings_typed_test.cpp.o"
  "CMakeFiles/bindings_typed_test.dir/bindings_typed_test.cpp.o.d"
  "bindings_typed_test"
  "bindings_typed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bindings_typed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
