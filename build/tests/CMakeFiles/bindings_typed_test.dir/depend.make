# Empty dependencies file for bindings_typed_test.
# This may be replaced when dependencies are built.
