# Empty compiler generated dependencies file for minimpi_fuzz_test.
# This may be replaced when dependencies are built.
