file(REMOVE_RECURSE
  "CMakeFiles/minimpi_fuzz_test.dir/minimpi_fuzz_test.cpp.o"
  "CMakeFiles/minimpi_fuzz_test.dir/minimpi_fuzz_test.cpp.o.d"
  "minimpi_fuzz_test"
  "minimpi_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
