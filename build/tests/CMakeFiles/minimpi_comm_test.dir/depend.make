# Empty dependencies file for minimpi_comm_test.
# This may be replaced when dependencies are built.
