file(REMOVE_RECURSE
  "CMakeFiles/minimpi_comm_test.dir/minimpi_comm_test.cpp.o"
  "CMakeFiles/minimpi_comm_test.dir/minimpi_comm_test.cpp.o.d"
  "minimpi_comm_test"
  "minimpi_comm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
