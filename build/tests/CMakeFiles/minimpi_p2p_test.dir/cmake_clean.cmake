file(REMOVE_RECURSE
  "CMakeFiles/minimpi_p2p_test.dir/minimpi_p2p_test.cpp.o"
  "CMakeFiles/minimpi_p2p_test.dir/minimpi_p2p_test.cpp.o.d"
  "minimpi_p2p_test"
  "minimpi_p2p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
