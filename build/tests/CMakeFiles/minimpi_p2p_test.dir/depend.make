# Empty dependencies file for minimpi_p2p_test.
# This may be replaced when dependencies are built.
