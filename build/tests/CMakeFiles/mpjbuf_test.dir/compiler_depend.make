# Empty compiler generated dependencies file for mpjbuf_test.
# This may be replaced when dependencies are built.
