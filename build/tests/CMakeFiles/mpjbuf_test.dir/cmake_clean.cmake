file(REMOVE_RECURSE
  "CMakeFiles/mpjbuf_test.dir/mpjbuf_test.cpp.o"
  "CMakeFiles/mpjbuf_test.dir/mpjbuf_test.cpp.o.d"
  "mpjbuf_test"
  "mpjbuf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpjbuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
