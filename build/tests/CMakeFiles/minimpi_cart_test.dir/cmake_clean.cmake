file(REMOVE_RECURSE
  "CMakeFiles/minimpi_cart_test.dir/minimpi_cart_test.cpp.o"
  "CMakeFiles/minimpi_cart_test.dir/minimpi_cart_test.cpp.o.d"
  "minimpi_cart_test"
  "minimpi_cart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_cart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
