# Empty compiler generated dependencies file for minimpi_cart_test.
# This may be replaced when dependencies are built.
