# Empty compiler generated dependencies file for minimpi_datatype_test.
# This may be replaced when dependencies are built.
