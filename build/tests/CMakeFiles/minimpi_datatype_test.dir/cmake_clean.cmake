file(REMOVE_RECURSE
  "CMakeFiles/minimpi_datatype_test.dir/minimpi_datatype_test.cpp.o"
  "CMakeFiles/minimpi_datatype_test.dir/minimpi_datatype_test.cpp.o.d"
  "minimpi_datatype_test"
  "minimpi_datatype_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_datatype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
