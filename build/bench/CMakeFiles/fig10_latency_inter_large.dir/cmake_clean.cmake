file(REMOVE_RECURSE
  "CMakeFiles/fig10_latency_inter_large.dir/fig10_latency_inter_large.cpp.o"
  "CMakeFiles/fig10_latency_inter_large.dir/fig10_latency_inter_large.cpp.o.d"
  "fig10_latency_inter_large"
  "fig10_latency_inter_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_inter_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
