# Empty compiler generated dependencies file for fig10_latency_inter_large.
# This may be replaced when dependencies are built.
