file(REMOVE_RECURSE
  "CMakeFiles/fig13_bw_inter_large.dir/fig13_bw_inter_large.cpp.o"
  "CMakeFiles/fig13_bw_inter_large.dir/fig13_bw_inter_large.cpp.o.d"
  "fig13_bw_inter_large"
  "fig13_bw_inter_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bw_inter_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
