# Empty dependencies file for fig13_bw_inter_large.
# This may be replaced when dependencies are built.
