file(REMOVE_RECURSE
  "CMakeFiles/fig18_validation_arrays_vs_buffers.dir/fig18_validation_arrays_vs_buffers.cpp.o"
  "CMakeFiles/fig18_validation_arrays_vs_buffers.dir/fig18_validation_arrays_vs_buffers.cpp.o.d"
  "fig18_validation_arrays_vs_buffers"
  "fig18_validation_arrays_vs_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_validation_arrays_vs_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
