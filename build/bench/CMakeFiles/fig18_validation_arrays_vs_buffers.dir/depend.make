# Empty dependencies file for fig18_validation_arrays_vs_buffers.
# This may be replaced when dependencies are built.
