file(REMOVE_RECURSE
  "CMakeFiles/abl_shm_channel.dir/abl_shm_channel.cpp.o"
  "CMakeFiles/abl_shm_channel.dir/abl_shm_channel.cpp.o.d"
  "abl_shm_channel"
  "abl_shm_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_shm_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
