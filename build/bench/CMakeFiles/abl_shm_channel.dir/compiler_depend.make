# Empty compiler generated dependencies file for abl_shm_channel.
# This may be replaced when dependencies are built.
