file(REMOVE_RECURSE
  "CMakeFiles/abl_collective_algorithms.dir/abl_collective_algorithms.cpp.o"
  "CMakeFiles/abl_collective_algorithms.dir/abl_collective_algorithms.cpp.o.d"
  "abl_collective_algorithms"
  "abl_collective_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_collective_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
