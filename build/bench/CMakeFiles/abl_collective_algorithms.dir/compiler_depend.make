# Empty compiler generated dependencies file for abl_collective_algorithms.
# This may be replaced when dependencies are built.
