file(REMOVE_RECURSE
  "CMakeFiles/abl_jni_array_strategies.dir/abl_jni_array_strategies.cpp.o"
  "CMakeFiles/abl_jni_array_strategies.dir/abl_jni_array_strategies.cpp.o.d"
  "abl_jni_array_strategies"
  "abl_jni_array_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_jni_array_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
