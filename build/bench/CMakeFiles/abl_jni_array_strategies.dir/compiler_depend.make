# Empty compiler generated dependencies file for abl_jni_array_strategies.
# This may be replaced when dependencies are built.
