file(REMOVE_RECURSE
  "CMakeFiles/abl_buffer_pool.dir/abl_buffer_pool.cpp.o"
  "CMakeFiles/abl_buffer_pool.dir/abl_buffer_pool.cpp.o.d"
  "abl_buffer_pool"
  "abl_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
