# Empty dependencies file for abl_buffer_pool.
# This may be replaced when dependencies are built.
