file(REMOVE_RECURSE
  "CMakeFiles/fig06_latency_intra_large.dir/fig06_latency_intra_large.cpp.o"
  "CMakeFiles/fig06_latency_intra_large.dir/fig06_latency_intra_large.cpp.o.d"
  "fig06_latency_intra_large"
  "fig06_latency_intra_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_latency_intra_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
