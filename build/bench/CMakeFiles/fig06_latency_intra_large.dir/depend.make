# Empty dependencies file for fig06_latency_intra_large.
# This may be replaced when dependencies are built.
