# Empty dependencies file for fig11_overhead_native_vs_java.
# This may be replaced when dependencies are built.
