file(REMOVE_RECURSE
  "CMakeFiles/fig11_overhead_native_vs_java.dir/fig11_overhead_native_vs_java.cpp.o"
  "CMakeFiles/fig11_overhead_native_vs_java.dir/fig11_overhead_native_vs_java.cpp.o.d"
  "fig11_overhead_native_vs_java"
  "fig11_overhead_native_vs_java.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overhead_native_vs_java.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
