# Empty dependencies file for abl_eager_rendezvous.
# This may be replaced when dependencies are built.
