file(REMOVE_RECURSE
  "CMakeFiles/abl_eager_rendezvous.dir/abl_eager_rendezvous.cpp.o"
  "CMakeFiles/abl_eager_rendezvous.dir/abl_eager_rendezvous.cpp.o.d"
  "abl_eager_rendezvous"
  "abl_eager_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eager_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
