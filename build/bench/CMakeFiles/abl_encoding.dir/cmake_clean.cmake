file(REMOVE_RECURSE
  "CMakeFiles/abl_encoding.dir/abl_encoding.cpp.o"
  "CMakeFiles/abl_encoding.dir/abl_encoding.cpp.o.d"
  "abl_encoding"
  "abl_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
