# Empty compiler generated dependencies file for fig16_allreduce_small.
# This may be replaced when dependencies are built.
