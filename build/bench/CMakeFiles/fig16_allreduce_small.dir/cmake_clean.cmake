file(REMOVE_RECURSE
  "CMakeFiles/fig16_allreduce_small.dir/fig16_allreduce_small.cpp.o"
  "CMakeFiles/fig16_allreduce_small.dir/fig16_allreduce_small.cpp.o.d"
  "fig16_allreduce_small"
  "fig16_allreduce_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_allreduce_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
