
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_bw_inter_small.cpp" "bench/CMakeFiles/fig12_bw_inter_small.dir/fig12_bw_inter_small.cpp.o" "gcc" "bench/CMakeFiles/fig12_bw_inter_small.dir/fig12_bw_inter_small.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ombj/CMakeFiles/jhpc_ombj.dir/DependInfo.cmake"
  "/root/repo/build/src/ompij/CMakeFiles/jhpc_ompij.dir/DependInfo.cmake"
  "/root/repo/build/src/mv2j/CMakeFiles/jhpc_mv2j.dir/DependInfo.cmake"
  "/root/repo/build/src/mpjbuf/CMakeFiles/jhpc_mpjbuf.dir/DependInfo.cmake"
  "/root/repo/build/src/minijvm/CMakeFiles/jhpc_minijvm.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/jhpc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/jhpc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jhpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
