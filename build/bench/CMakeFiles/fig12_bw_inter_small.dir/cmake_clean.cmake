file(REMOVE_RECURSE
  "CMakeFiles/fig12_bw_inter_small.dir/fig12_bw_inter_small.cpp.o"
  "CMakeFiles/fig12_bw_inter_small.dir/fig12_bw_inter_small.cpp.o.d"
  "fig12_bw_inter_small"
  "fig12_bw_inter_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bw_inter_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
