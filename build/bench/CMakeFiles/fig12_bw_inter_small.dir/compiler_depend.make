# Empty compiler generated dependencies file for fig12_bw_inter_small.
# This may be replaced when dependencies are built.
