file(REMOVE_RECURSE
  "CMakeFiles/fig08_bw_intra_large.dir/fig08_bw_intra_large.cpp.o"
  "CMakeFiles/fig08_bw_intra_large.dir/fig08_bw_intra_large.cpp.o.d"
  "fig08_bw_intra_large"
  "fig08_bw_intra_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_bw_intra_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
