# Empty compiler generated dependencies file for fig08_bw_intra_large.
# This may be replaced when dependencies are built.
