# Empty dependencies file for fig14_bcast_small.
# This may be replaced when dependencies are built.
