file(REMOVE_RECURSE
  "CMakeFiles/fig17_allreduce_large.dir/fig17_allreduce_large.cpp.o"
  "CMakeFiles/fig17_allreduce_large.dir/fig17_allreduce_large.cpp.o.d"
  "fig17_allreduce_large"
  "fig17_allreduce_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_allreduce_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
