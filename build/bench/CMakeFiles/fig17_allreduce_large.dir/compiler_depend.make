# Empty compiler generated dependencies file for fig17_allreduce_large.
# This may be replaced when dependencies are built.
