# Empty compiler generated dependencies file for fig15_bcast_large.
# This may be replaced when dependencies are built.
