file(REMOVE_RECURSE
  "CMakeFiles/fig15_bcast_large.dir/fig15_bcast_large.cpp.o"
  "CMakeFiles/fig15_bcast_large.dir/fig15_bcast_large.cpp.o.d"
  "fig15_bcast_large"
  "fig15_bcast_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bcast_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
