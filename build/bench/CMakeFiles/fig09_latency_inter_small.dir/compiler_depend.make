# Empty compiler generated dependencies file for fig09_latency_inter_small.
# This may be replaced when dependencies are built.
