file(REMOVE_RECURSE
  "CMakeFiles/fig09_latency_inter_small.dir/fig09_latency_inter_small.cpp.o"
  "CMakeFiles/fig09_latency_inter_small.dir/fig09_latency_inter_small.cpp.o.d"
  "fig09_latency_inter_small"
  "fig09_latency_inter_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_latency_inter_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
