file(REMOVE_RECURSE
  "CMakeFiles/abl_bytebuffer_access.dir/abl_bytebuffer_access.cpp.o"
  "CMakeFiles/abl_bytebuffer_access.dir/abl_bytebuffer_access.cpp.o.d"
  "abl_bytebuffer_access"
  "abl_bytebuffer_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bytebuffer_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
