# Empty compiler generated dependencies file for abl_bytebuffer_access.
# This may be replaced when dependencies are built.
