# Empty dependencies file for fig07_bw_intra_small.
# This may be replaced when dependencies are built.
