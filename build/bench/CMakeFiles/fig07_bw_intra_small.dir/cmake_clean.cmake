file(REMOVE_RECURSE
  "CMakeFiles/fig07_bw_intra_small.dir/fig07_bw_intra_small.cpp.o"
  "CMakeFiles/fig07_bw_intra_small.dir/fig07_bw_intra_small.cpp.o.d"
  "fig07_bw_intra_small"
  "fig07_bw_intra_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bw_intra_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
