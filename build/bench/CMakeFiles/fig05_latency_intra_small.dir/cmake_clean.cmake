file(REMOVE_RECURSE
  "CMakeFiles/fig05_latency_intra_small.dir/fig05_latency_intra_small.cpp.o"
  "CMakeFiles/fig05_latency_intra_small.dir/fig05_latency_intra_small.cpp.o.d"
  "fig05_latency_intra_small"
  "fig05_latency_intra_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_latency_intra_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
