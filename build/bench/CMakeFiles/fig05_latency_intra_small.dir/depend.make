# Empty dependencies file for fig05_latency_intra_small.
# This may be replaced when dependencies are built.
