file(REMOVE_RECURSE
  "CMakeFiles/word_histogram.dir/word_histogram.cpp.o"
  "CMakeFiles/word_histogram.dir/word_histogram.cpp.o.d"
  "word_histogram"
  "word_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
