# Empty dependencies file for word_histogram.
# This may be replaced when dependencies are built.
