# Empty dependencies file for npb_is.
# This may be replaced when dependencies are built.
