file(REMOVE_RECURSE
  "CMakeFiles/npb_is.dir/npb_is.cpp.o"
  "CMakeFiles/npb_is.dir/npb_is.cpp.o.d"
  "npb_is"
  "npb_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
