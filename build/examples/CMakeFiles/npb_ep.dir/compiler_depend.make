# Empty compiler generated dependencies file for npb_ep.
# This may be replaced when dependencies are built.
