file(REMOVE_RECURSE
  "CMakeFiles/npb_ep.dir/npb_ep.cpp.o"
  "CMakeFiles/npb_ep.dir/npb_ep.cpp.o.d"
  "npb_ep"
  "npb_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
