// Monte-Carlo estimation of pi — the classic first parallel program,
// written against the MVAPICH2-J bindings the way a Java HPC course would
// write it: per-rank sampling, then one allReduce of the hit counters.
//
//   ./monte_carlo_pi [ranks] [samples_per_rank]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <random>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const long long samples_per_rank =
      argc > 2 ? std::atoll(argv[2]) : 400'000;

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();

    // Deterministic per-rank stream: same answer on every run.
    std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^
                        static_cast<unsigned long long>(world.getRank()));
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    long long hits = 0;
    for (long long i = 0; i < samples_per_rank; ++i) {
      const double x = uniform(rng);
      const double y = uniform(rng);
      if (x * x + y * y <= 1.0) ++hits;
    }

    auto local = env.newArray<minijvm::jlong>(2);
    auto global = env.newArray<minijvm::jlong>(2);
    local[0] = hits;
    local[1] = samples_per_rank;
    world.allReduce(local, global, 2, mv2j::LONG, mv2j::SUM);

    if (world.getRank() == 0) {
      const double pi = 4.0 * static_cast<double>(global[0]) /
                        static_cast<double>(global[1]);
      std::cout << std::fixed << std::setprecision(6)
                << "pi ~= " << pi << "  (" << global[1] << " samples on "
                << world.getSize() << " ranks, error "
                << std::abs(pi - 3.141592653589793) << ")\n";
    }
  });
  return 0;
}
