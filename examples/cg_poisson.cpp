// Distributed conjugate gradient on a 1-D Poisson system — the NPB CG
// communication pattern (sparse matvec + dot-product reductions) on the
// MVAPICH2-J bindings, with a Cartesian topology from the substrate.
//
// The tridiagonal system A = tridiag(-1, 2, -1) is partitioned by block
// rows. Each CG iteration needs:
//   * one halo exchange (one boundary element per neighbour) for the
//     matvec — non-blocking iSend/iRecv on direct ByteBuffers,
//   * two global dot products — allReduce,
// which is exactly NPB CG's traffic shape in miniature.
//
// Verification: b is manufactured from a known x*, and CG must recover it
// (relative error < 1e-8) in well under the dimension's iteration bound.
//
//   ./cg_poisson [ranks] [rows_per_rank]
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

namespace {

/// One rank's slice of the CG state.
struct LocalVectors {
  std::vector<double> x, r, p, ap;
};

}  // namespace

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int local_n = argc > 2 ? std::atoi(argv[2]) : 2000;

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int size = world.getSize();
    const int me = world.getRank();
    const long long n = static_cast<long long>(local_n) * size;

    const int up = me > 0 ? me - 1 : -1;
    const int down = me + 1 < size ? me + 1 : -1;

    // Halo buffers: one double per direction.
    auto send_up = env.newDirectBuffer(8);
    auto send_down = env.newDirectBuffer(8);
    auto recv_up = env.newDirectBuffer(8);
    auto recv_down = env.newDirectBuffer(8);
    auto dot_in = env.newArray<minijvm::jdouble>(1);
    auto dot_out = env.newArray<minijvm::jdouble>(1);

    constexpr int kHaloTag = 11;
    // y = A*v for the tridiagonal Laplacian, with halo exchange.
    auto matvec = [&](const std::vector<double>& v, std::vector<double>& y) {
      std::vector<mv2j::Request> reqs;
      if (up >= 0) {
        reqs.push_back(world.iRecv(recv_up, 8, mv2j::BYTE, up, kHaloTag));
        send_up.put_double(0, v.front());
        reqs.push_back(world.iSend(send_up, 8, mv2j::BYTE, up, kHaloTag));
      }
      if (down >= 0) {
        reqs.push_back(world.iRecv(recv_down, 8, mv2j::BYTE, down, kHaloTag));
        send_down.put_double(0, v.back());
        reqs.push_back(world.iSend(send_down, 8, mv2j::BYTE, down, kHaloTag));
      }
      mv2j::Request::waitAll(reqs);
      const double ghost_up = up >= 0 ? recv_up.get_double(0) : 0.0;
      const double ghost_down = down >= 0 ? recv_down.get_double(0) : 0.0;
      const auto ln = static_cast<std::size_t>(local_n);
      for (std::size_t i = 0; i < ln; ++i) {
        const double left = i > 0 ? v[i - 1] : ghost_up;
        const double right = i + 1 < ln ? v[i + 1] : ghost_down;
        y[i] = 2.0 * v[i] - left - right;
      }
    };

    auto dot = [&](const std::vector<double>& a,
                   const std::vector<double>& b) {
      double local = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
      dot_in[0] = local;
      world.allReduce(dot_in, dot_out, 1, mv2j::DOUBLE, mv2j::SUM);
      return dot_out[0];
    };

    // Manufacture b = A * x_true for a known smooth x_true.
    const auto ln = static_cast<std::size_t>(local_n);
    std::vector<double> x_true(ln);
    for (std::size_t i = 0; i < ln; ++i) {
      const auto g = static_cast<double>(me * local_n + static_cast<int>(i));
      x_true[i] = std::sin(3.0 * g / static_cast<double>(n)) + 0.25;
    }
    std::vector<double> b(ln);
    matvec(x_true, b);

    // CG from x = 0.
    LocalVectors v{std::vector<double>(ln, 0.0), b, b,
                   std::vector<double>(ln, 0.0)};
    double rr = dot(v.r, v.r);
    const double rr0 = rr;
    int iterations = 0;
    const int max_iters = 8 * local_n * size;
    while (rr > 1e-22 * rr0 && iterations < max_iters) {
      matvec(v.p, v.ap);
      const double alpha = rr / dot(v.p, v.ap);
      for (std::size_t i = 0; i < ln; ++i) {
        v.x[i] += alpha * v.p[i];
        v.r[i] -= alpha * v.ap[i];
      }
      const double rr_new = dot(v.r, v.r);
      const double beta = rr_new / rr;
      for (std::size_t i = 0; i < ln; ++i)
        v.p[i] = v.r[i] + beta * v.p[i];
      rr = rr_new;
      ++iterations;
    }

    // Verification: relative error against the manufactured solution.
    double local_err = 0.0, local_norm = 0.0;
    for (std::size_t i = 0; i < ln; ++i) {
      local_err += (v.x[i] - x_true[i]) * (v.x[i] - x_true[i]);
      local_norm += x_true[i] * x_true[i];
    }
    dot_in[0] = local_err;
    world.allReduce(dot_in, dot_out, 1, mv2j::DOUBLE, mv2j::SUM);
    const double err = dot_out[0];
    dot_in[0] = local_norm;
    world.allReduce(dot_in, dot_out, 1, mv2j::DOUBLE, mv2j::SUM);
    const double norm = dot_out[0];
    const double rel = std::sqrt(err / norm);

    if (me == 0) {
      std::cout << std::scientific << std::setprecision(3)
                << "CG: n=" << n << " on " << size << " ranks, "
                << iterations << " iterations, relative error " << rel
                << "\n"
                << (rel < 1e-8 ? "CG verification: PASS\n"
                               : "CG verification: FAIL\n");
    }
  });
  return 0;
}
