// NPB IS (Integer Sort) kernel on the MVAPICH2-J bindings.
//
// The second NPB-MPJ-style workload: parallel bucket sort of uniformly
// distributed integer keys. Each rank generates its block of keys,
// computes a local histogram of the global buckets, learns every bucket's
// total with allReduce, redistributes keys so rank r owns bucket range r
// (allToAllv — the heavy communication step), sorts locally by counting,
// and the result is verified for global sortedness and key conservation.
//
//   ./npb_is [ranks] [log2_keys]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <random>
#include <vector>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int log2_keys = argc > 2 ? std::atoi(argv[2]) : 18;
  const long long total_keys = 1ll << log2_keys;
  constexpr int kMaxKey = 1 << 16;

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();
    const long long my_keys = total_keys / n +
                              (me < total_keys % n ? 1 : 0);

    // 1. Key generation (deterministic per rank).
    std::mt19937 rng(1303u + static_cast<unsigned>(me) * 7919u);
    std::uniform_int_distribution<int> dist(0, kMaxKey - 1);
    auto keys = env.newArray<minijvm::jint>(
        static_cast<std::size_t>(my_keys));
    for (long long i = 0; i < my_keys; ++i)
      keys[static_cast<std::size_t>(i)] = dist(rng);

    // 2. Per-destination counts: key k goes to rank k / (kMaxKey / n).
    const int keys_per_rank_range = (kMaxKey + n - 1) / n;
    auto owner = [&](int key) { return key / keys_per_rank_range; };
    std::vector<int> send_counts(static_cast<std::size_t>(n), 0);
    for (long long i = 0; i < my_keys; ++i)
      ++send_counts[static_cast<std::size_t>(
          owner(keys[static_cast<std::size_t>(i)]))];

    // 3. Exchange counts (alltoall of one int per pair) to size receive
    //    buffers.
    auto sc = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    auto rc = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      sc[static_cast<std::size_t>(r)] = send_counts[static_cast<std::size_t>(r)];
    world.allToAll(sc, 1, mv2j::INT, rc);

    // 4. Pack keys by destination and redistribute with allToAllv.
    std::vector<int> sdispls(static_cast<std::size_t>(n), 0);
    for (int r = 1; r < n; ++r)
      sdispls[static_cast<std::size_t>(r)] =
          sdispls[static_cast<std::size_t>(r - 1)] +
          send_counts[static_cast<std::size_t>(r - 1)];
    auto packed = env.newArray<minijvm::jint>(
        static_cast<std::size_t>(my_keys));
    {
      std::vector<int> cursor = sdispls;
      for (long long i = 0; i < my_keys; ++i) {
        const int k = keys[static_cast<std::size_t>(i)];
        packed[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(owner(k))]++)] = k;
      }
    }
    std::vector<int> recv_counts(static_cast<std::size_t>(n));
    std::vector<int> rdispls(static_cast<std::size_t>(n), 0);
    long long incoming = 0;
    for (int r = 0; r < n; ++r) {
      recv_counts[static_cast<std::size_t>(r)] =
          rc[static_cast<std::size_t>(r)];
      rdispls[static_cast<std::size_t>(r)] = static_cast<int>(incoming);
      incoming += rc[static_cast<std::size_t>(r)];
    }
    auto mine = env.newArray<minijvm::jint>(
        static_cast<std::size_t>(std::max<long long>(incoming, 1)));
    world.allToAllv(packed, send_counts, sdispls, mv2j::INT, mine,
                    recv_counts, rdispls);

    // 5. Local counting sort of my bucket range.
    const int lo = me * keys_per_rank_range;
    const int hi = std::min(kMaxKey, lo + keys_per_rank_range);
    std::vector<long long> hist(static_cast<std::size_t>(hi - lo), 0);
    for (long long i = 0; i < incoming; ++i) {
      const int k = mine[static_cast<std::size_t>(i)];
      ++hist[static_cast<std::size_t>(k - lo)];
    }
    std::vector<int> sorted;
    sorted.reserve(static_cast<std::size_t>(incoming));
    for (int k = lo; k < hi; ++k)
      for (long long c = 0; c < hist[static_cast<std::size_t>(k - lo)]; ++c)
        sorted.push_back(k);

    // 6. Verification.
    //    (a) Key conservation: total keys unchanged.
    auto cnt = env.newArray<minijvm::jlong>(1);
    auto total = env.newArray<minijvm::jlong>(1);
    cnt[0] = incoming;
    world.allReduce(cnt, total, 1, mv2j::LONG, mv2j::SUM);
    //    (b) Global sortedness: my max <= right neighbour's min (ranks
    //        with no keys pass sentinels through).
    auto boundary = env.newArray<minijvm::jint>(1);
    boundary[0] = sorted.empty() ? lo : sorted.back();
    int left_max = -1;
    if (me + 1 < n) world.send(boundary, 1, mv2j::INT, me + 1, 1);
    if (me > 0) {
      auto in = env.newArray<minijvm::jint>(1);
      world.recv(in, 1, mv2j::INT, me - 1, 1);
      left_max = in[0];
    }
    const bool locally_sorted =
        std::is_sorted(sorted.begin(), sorted.end());
    const bool boundary_ok =
        sorted.empty() || left_max <= sorted.front();
    auto ok = env.newArray<minijvm::jint>(1);
    auto all_ok = env.newArray<minijvm::jint>(1);
    ok[0] = locally_sorted && boundary_ok ? 1 : 0;
    world.allReduce(ok, all_ok, 1, mv2j::INT, mv2j::MIN);

    if (me == 0) {
      std::cout << "IS: 2^" << log2_keys << " keys, " << n << " ranks, "
                << "max key " << kMaxKey << "\n"
                << "  conservation: "
                << (total[0] == total_keys ? "OK" : "LOST KEYS") << " ("
                << total[0] << "/" << total_keys << ")\n"
                << "  sortedness:   " << (all_ok[0] == 1 ? "OK" : "BROKEN")
                << "\n"
                << ((total[0] == total_keys && all_ok[0] == 1)
                        ? "IS verification: PASS\n"
                        : "IS verification: FAIL\n");
    }
  });
  return 0;
}
