// 1-D heat diffusion with halo exchange — the canonical stencil pattern
// of MPI courses, on the MVAPICH2-J bindings.
//
// The domain is split block-wise across ranks; every step each rank
// exchanges one boundary cell with each neighbour using NON-BLOCKING
// point-to-point on direct ByteBuffers (the path a performance-conscious
// Java code would choose), then applies the stencil and reports the
// residual with an allReduce every few hundred steps.
//
//   ./heat1d [ranks] [cells_per_rank] [steps]
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int cells = argc > 2 ? std::atoi(argv[2]) : 4096;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 1000;
  constexpr double kAlpha = 0.25;  // diffusion coefficient (stable)

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int rank = world.getRank();
    const int size = world.getSize();
    const int left = rank - 1;
    const int right = rank + 1;

    // Local field with two ghost cells; a hot spike in the middle of the
    // global domain.
    std::vector<double> u(static_cast<std::size_t>(cells) + 2, 0.0);
    std::vector<double> next = u;
    const long long global_mid =
        static_cast<long long>(cells) * size / 2;
    const long long my_first = static_cast<long long>(cells) * rank;
    if (global_mid >= my_first && global_mid < my_first + cells)
      u[static_cast<std::size_t>(global_mid - my_first) + 1] = 1000.0;

    // Halo buffers: one direct ByteBuffer per direction.
    auto send_left = env.newDirectBuffer(8);
    auto send_right = env.newDirectBuffer(8);
    auto recv_left = env.newDirectBuffer(8);
    auto recv_right = env.newDirectBuffer(8);

    constexpr int kHaloTag = 7;
    for (int step = 0; step < steps; ++step) {
      std::vector<mv2j::Request> reqs;
      if (left >= 0) {
        reqs.push_back(world.iRecv(recv_left, 8, mv2j::BYTE, left, kHaloTag));
        send_left.put_double(0, u[1]);
        reqs.push_back(world.iSend(send_left, 8, mv2j::BYTE, left, kHaloTag));
      }
      if (right < size) {
        reqs.push_back(
            world.iRecv(recv_right, 8, mv2j::BYTE, right, kHaloTag));
        send_right.put_double(0, u[static_cast<std::size_t>(cells)]);
        reqs.push_back(
            world.iSend(send_right, 8, mv2j::BYTE, right, kHaloTag));
      }
      mv2j::Request::waitAll(reqs);
      u[0] = left >= 0 ? recv_left.get_double(0) : u[1];
      u[static_cast<std::size_t>(cells) + 1] =
          right < size ? recv_right.get_double(0)
                       : u[static_cast<std::size_t>(cells)];

      for (int i = 1; i <= cells; ++i) {
        const auto j = static_cast<std::size_t>(i);
        next[j] = u[j] + kAlpha * (u[j - 1] - 2.0 * u[j] + u[j + 1]);
      }
      std::swap(u, next);

      if ((step + 1) % 250 == 0 || step + 1 == steps) {
        double local_heat = 0.0;
        for (int i = 1; i <= cells; ++i)
          local_heat += u[static_cast<std::size_t>(i)];
        auto mine = env.newArray<minijvm::jdouble>(1);
        auto total = env.newArray<minijvm::jdouble>(1);
        mine[0] = local_heat;
        world.allReduce(mine, total, 1, mv2j::DOUBLE, mv2j::SUM);
        if (rank == 0) {
          std::cout << "step " << std::setw(5) << step + 1
                    << "  total heat = " << std::fixed
                    << std::setprecision(3) << total[0] << "\n";
        }
      }
    }

    // Conservation check: diffusion with reflecting boundaries preserves
    // total heat (1000.0 from the initial spike).
    double local_heat = 0.0;
    for (int i = 1; i <= cells; ++i)
      local_heat += u[static_cast<std::size_t>(i)];
    auto mine = env.newArray<minijvm::jdouble>(1);
    auto total = env.newArray<minijvm::jdouble>(1);
    mine[0] = local_heat;
    world.allReduce(mine, total, 1, mv2j::DOUBLE, mv2j::SUM);
    if (rank == 0) {
      const bool ok = std::abs(total[0] - 1000.0) < 1e-6;
      std::cout << (ok ? "heat conserved: PASS\n"
                       : "heat NOT conserved: FAIL\n");
    }
  });
  return 0;
}
