// Quickstart: the MVAPICH2-J bindings in one file.
//
// Launches a 4-rank job (each rank = one simulated JVM on the shared
// virtual cluster), then demonstrates the basic API surface a Java MPI
// program would touch: rank/size, direct-ByteBuffer point-to-point, Java
// arrays, a broadcast and an allReduce.
//
//   ./quickstart            # 4 ranks on one virtual node
//   JHPC_PPN=2 ./quickstart # 2 virtual nodes
#include <iostream>
#include <mutex>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

int main() {
  mv2j::RunOptions options;
  options.ranks = 4;
  options.fabric = netsim::FabricConfig::from_env();

  std::mutex print_mu;  // keep the hello lines intact
  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int rank = world.getRank();
    const int size = world.getSize();

    {
      std::lock_guard<std::mutex> lk(print_mu);
      std::cout << "Hello from rank " << rank << " of " << size << "\n";
    }
    world.barrier();

    // --- Point-to-point with direct ByteBuffers (zero-copy path) ---
    if (rank == 0) {
      mv2j::ByteBuffer msg = env.newDirectBuffer(8);
      msg.put_long(0, 20260704);
      world.send(msg, 8, mv2j::BYTE, /*dest=*/1, /*tag=*/0);
    } else if (rank == 1) {
      mv2j::ByteBuffer msg = env.newDirectBuffer(8);
      world.recv(msg, 8, mv2j::BYTE, /*source=*/0, /*tag=*/0);
      std::lock_guard<std::mutex> lk(print_mu);
      std::cout << "rank 1 received " << msg.get_long(0)
                << " via direct ByteBuffer\n";
    }

    // --- The same with a Java array (staged through the buffer pool) ---
    auto arr = env.newArray<minijvm::jint>(4);
    if (rank == 0)
      for (std::size_t i = 0; i < 4; ++i) arr[i] = static_cast<int>(10 * i);
    world.bcast(arr, 4, mv2j::INT, /*root=*/0);

    // --- A reduction everyone participates in ---
    auto mine = env.newArray<minijvm::jlong>(1);
    auto total = env.newArray<minijvm::jlong>(1);
    mine[0] = rank + 1;
    world.allReduce(mine, total, 1, mv2j::LONG, mv2j::SUM);

    if (rank == 0) {
      std::lock_guard<std::mutex> lk(print_mu);
      std::cout << "bcast payload arr[3] = " << arr[3]
                << ", allReduce sum 1..n = " << total[0] << "\n"
                << "buffer pool stats: " << env.pool().stats().requests
                << " requests, " << env.pool().stats().pool_hits
                << " pool hits\n";
    }
  });
  std::cout << "quickstart finished OK\n";
  return 0;
}
