// Distributed matrix transpose using DERIVED DATATYPES and the OFFSET
// API — the two MVAPICH2-J extensions this reproduction implements on top
// of the buffering layer (paper Section IV-B).
//
// Each rank owns a block-row of an (n*ranks) x (n*ranks) matrix. To
// transpose, rank r sends to rank c the COLUMN block that becomes c's row
// block — extracted in one call with a vector datatype (no manual
// packing), addressed with an element offset (no sub-array copies).
//
//   ./matrix_transpose [ranks] [block]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 64;  // block edge

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int p = world.getSize();
    const int me = world.getRank();
    const int cols = n * p;  // my block-row is n x cols, row-major

    auto mine = env.newArray<minijvm::jint>(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(cols));
    auto result = env.newArray<minijvm::jint>(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(cols));
    // Global element (row, col) carries row * 100000 + col.
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < cols; ++c)
        mine[static_cast<std::size_t>(r * cols + c)] =
            (me * n + r) * 100000 + c;

    // One column-block of my row-block: n rows of n consecutive ints,
    // stride = cols ints. size() = n*n ints.
    const mv2j::Datatype block = mv2j::Datatype::vector(n, n, cols, mv2j::INT);

    // Exchange: post receives for every peer's block (it arrives packed,
    // n*n contiguous ints), then send column block c to rank c using the
    // offset API to address it — no manual staging anywhere.
    std::vector<minijvm::JArray<minijvm::jint>> inbox;
    std::vector<mv2j::Request> reqs;
    for (int c = 0; c < p; ++c) {
      inbox.push_back(env.newArray<minijvm::jint>(
          static_cast<std::size_t>(n) * static_cast<std::size_t>(n)));
      if (c == me) continue;
      reqs.push_back(world.iRecv(inbox.back(), 0, n * n, mv2j::INT, c, 0));
    }
    for (int c = 0; c < p; ++c) {
      if (c == me) {
        // Local block: pack through the same datatype machinery.
        world.send(mine, /*offset=*/c * n, 1, block, me, 1);
        world.recv(inbox[static_cast<std::size_t>(me)], 0, n * n, mv2j::INT,
                   me, 1);
        continue;
      }
      world.send(mine, /*offset=*/c * n, /*count=*/1, block, c, 0);
    }
    mv2j::Request::waitAll(reqs);

    // Assemble my transposed block-row: received block b holds the
    // (me-th column block of rank b's row block); transposing it in
    // place gives rows of the result.
    for (int b = 0; b < p; ++b) {
      const auto& blk = inbox[static_cast<std::size_t>(b)];
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
          result[static_cast<std::size_t>(r * cols + b * n + c)] =
              blk[static_cast<std::size_t>(c * n + r)];
    }

    // Verify: result(row, col) must equal original(col, row).
    long long errors = 0;
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < cols; ++c) {
        const int want = c * 100000 + (me * n + r);
        if (result[static_cast<std::size_t>(r * cols + c)] != want) ++errors;
      }
    auto mine_err = env.newArray<minijvm::jlong>(1);
    auto total_err = env.newArray<minijvm::jlong>(1);
    mine_err[0] = errors;
    world.allReduce(mine_err, total_err, 1, mv2j::LONG, mv2j::SUM);
    if (me == 0) {
      std::cout << "transpose of " << n * p << "x" << n * p << " across "
                << p << " ranks: "
                << (total_err[0] == 0 ? "PASS" : "FAIL") << " ("
                << total_err[0] << " mismatches)\n";
    }
  });
  return 0;
}
