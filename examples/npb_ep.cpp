// NPB EP (Embarrassingly Parallel) kernel on the MVAPICH2-J bindings.
//
// The paper cites NPB-MPJ — the NAS Parallel Benchmarks for Java MPI — as
// the canonical legacy workload of the mpiJava 1.2 / MPJ era. This is the
// EP kernel in that style: each rank generates its slice of a shared
// pseudorandom stream with NPB's linear congruential generator, accepts
// pairs inside the unit circle, bins the resulting Gaussian deviates into
// annuli, and the counts/sums are combined with Allreduce.
//
// Verification: the result must be EXACTLY independent of the rank count
// (the stream is deterministic and the decomposition must not change it),
// checked here against a sequential recomputation on rank 0.
//
//   ./npb_ep [ranks] [log2_pairs]
#include <array>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

namespace {

// NPB's 46-bit linear congruential generator: x_{k+1} = a*x_k mod 2^46.
constexpr double kR23 = 1.0 / 8388608.0;          // 2^-23
constexpr double kR46 = kR23 * kR23;              // 2^-46
constexpr double kT23 = 8388608.0;                // 2^23
constexpr double kT46 = kT23 * kT23;              // 2^46
constexpr double kA = 1220703125.0;               // 5^13
constexpr double kSeed = 271828183.0;

/// One LCG step: returns the uniform deviate in (0,1) and advances x.
double randlc(double* x, double a) {
  const double t1a = kR23 * a;
  const double a1 = static_cast<double>(static_cast<long long>(t1a));
  const double a2 = a - kT23 * a1;
  const double t1 = kR23 * *x;
  const double x1 = static_cast<double>(static_cast<long long>(t1));
  const double x2 = *x - kT23 * x1;
  const double t2 = a1 * x2 + a2 * x1;
  const double t3 = static_cast<double>(static_cast<long long>(kR23 * t2));
  const double z = t2 - kT23 * t3;
  const double t4 = kT23 * z + a2 * x2;
  const double t5 = static_cast<double>(static_cast<long long>(kR46 * t4));
  *x = t4 - kT46 * t5;
  return kR46 * *x;
}

/// a^n mod 2^46 via binary exponentiation over the same arithmetic
/// (randlc(&x, q) computes x = q*x mod 2^46, i.e. a multiply-mod).
double ipow46(double a, long long n) {
  double result = 1.0;
  double q = a;
  while (n > 0) {
    if (n & 1) (void)randlc(&result, q);  // result *= q (mod 2^46)
    (void)randlc(&q, q);                  // q *= q (mod 2^46)
    n >>= 1;
  }
  return result;
}

/// Seed after `steps` LCG steps: a^steps * seed mod 2^46 — the stream
/// jump that makes the block decomposition exact.
double seed_at(long long steps) {
  double s = kSeed;
  (void)randlc(&s, ipow46(kA, steps));
  return s;
}

struct EpResult {
  double sx = 0.0;
  double sy = 0.0;
  std::array<long long, 10> q{};  // annulus counts
  bool operator==(const EpResult& o) const {
    return sx == o.sx && sy == o.sy && q == o.q;
  }
};

/// Run EP over pair indices [first, last).
EpResult ep_range(long long first, long long last) {
  EpResult r;
  constexpr int kChunk = 1 << 12;  // pairs per seed re-derivation
  for (long long base = first; base < last; base += kChunk) {
    const long long end = std::min(base + kChunk, last);
    // Jump the stream to pair index `base` (2 deviates per pair).
    double x = seed_at(2 * base);
    for (long long i = base; i < end; ++i) {
      const double u1 = 2.0 * randlc(&x, kA) - 1.0;
      const double u2 = 2.0 * randlc(&x, kA) - 1.0;
      const double t = u1 * u1 + u2 * u2;
      if (t > 1.0) continue;
      const double f = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = u1 * f;
      const double gy = u2 * f;
      r.sx += gx;
      r.sy += gy;
      const auto bin = static_cast<std::size_t>(
          std::max(std::abs(gx), std::abs(gy)));
      if (bin < r.q.size()) ++r.q[bin];
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int log2_pairs = argc > 2 ? std::atoi(argv[2]) : 18;
  const long long pairs = 1ll << log2_pairs;

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();

    // Block decomposition of the pair index space.
    const long long first = pairs * me / n;
    const long long last = pairs * (me + 1) / n;
    const EpResult local = ep_range(first, last);

    // Combine: 2 doubles + 10 counts.
    auto sums = env.newArray<minijvm::jdouble>(2);
    auto gsums = env.newArray<minijvm::jdouble>(2);
    sums[0] = local.sx;
    sums[1] = local.sy;
    world.allReduce(sums, gsums, 2, mv2j::DOUBLE, mv2j::SUM);

    auto counts = env.newArray<minijvm::jlong>(10);
    auto gcounts = env.newArray<minijvm::jlong>(10);
    for (std::size_t i = 0; i < 10; ++i) counts[i] = local.q[i];
    world.allReduce(counts, gcounts, 10, mv2j::LONG, mv2j::SUM);

    if (me == 0) {
      long long accepted = 0;
      for (std::size_t i = 0; i < 10; ++i) accepted += gcounts[i];
      std::cout << std::setprecision(15) << "EP: 2^" << log2_pairs
                << " pairs on " << n << " ranks\n"
                << "  sx=" << gsums[0] << " sy=" << gsums[1]
                << " accepted=" << accepted << "\n";
      // Verification: decomposition independence.
      const EpResult seq = ep_range(0, pairs);
      long long seq_accepted = 0;
      for (long long c : seq.q) seq_accepted += c;
      const bool ok = std::abs(seq.sx - gsums[0]) < 1e-9 &&
                      std::abs(seq.sy - gsums[1]) < 1e-9 &&
                      seq_accepted == accepted;
      std::cout << (ok ? "EP verification: PASS\n"
                       : "EP verification: FAIL\n");
    }
  });
  return 0;
}
