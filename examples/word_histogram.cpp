// Distributed word histogram — a Big-Data-flavoured workload (the paper's
// motivation for Java in HPC is the Hadoop/Spark ecosystem) built on the
// MVAPICH2-J bindings: generate text shards per rank, hash-partition word
// counts with allToAllv, merge, and gather the global top-10 at rank 0.
//
//   ./word_histogram [ranks] [words_per_rank]
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "jhpc/mv2j/env.hpp"

using namespace jhpc;

namespace {

// A small Zipf-ish vocabulary: low ids are much more frequent.
const char* kVocabulary[] = {
    "the",  "of",   "and",    "to",      "data",    "node",   "java",
    "mpi",  "heap", "buffer", "latency", "kernel",  "thread", "rank",
    "ring", "tree", "packet", "memory",  "compute", "fabric",
};
constexpr int kVocabSize = static_cast<int>(std::size(kVocabulary));

int zipf_pick(std::mt19937_64& rng) {
  // P(k) ~ 1/(k+1): cheap inverse-CDF on precomputed weights.
  static const std::vector<double> cdf = [] {
    std::vector<double> c;
    double acc = 0.0;
    for (int k = 0; k < kVocabSize; ++k) {
      acc += 1.0 / (k + 1);
      c.push_back(acc);
    }
    for (double& v : c) v /= acc;
    return c;
  }();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double x = u(rng);
  return static_cast<int>(std::lower_bound(cdf.begin(), cdf.end(), x) -
                          cdf.begin());
}

}  // namespace

int main(int argc, char** argv) {
  mv2j::RunOptions options;
  options.ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const long long words_per_rank =
      argc > 2 ? std::atoll(argv[2]) : 200'000;

  mv2j::run(options, [&](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    const int rank = world.getRank();
    const int size = world.getSize();

    // 1. "Map": local counting of this rank's shard.
    std::mt19937_64 rng(42ull + static_cast<unsigned long long>(rank));
    std::vector<long long> local(kVocabSize, 0);
    for (long long i = 0; i < words_per_rank; ++i) ++local[static_cast<std::size_t>(zipf_pick(rng))];

    // 2. "Shuffle": word w belongs to reducer w % size. Pack per-reducer
    //    (word id, count) pairs and exchange with allToAllv.
    std::vector<int> send_counts(static_cast<std::size_t>(size), 0);
    for (int w = 0; w < kVocabSize; ++w)
      send_counts[static_cast<std::size_t>(w % size)] += 2;  // id + count
    std::vector<int> send_displs(static_cast<std::size_t>(size), 0);
    for (int r = 1; r < size; ++r)
      send_displs[static_cast<std::size_t>(r)] =
          send_displs[static_cast<std::size_t>(r - 1)] +
          send_counts[static_cast<std::size_t>(r - 1)];

    const int total_send = send_displs.back() + send_counts.back();
    auto send_buf =
        env.newArray<minijvm::jlong>(static_cast<std::size_t>(total_send));
    {
      std::vector<int> cursor = send_displs;
      for (int w = 0; w < kVocabSize; ++w) {
        auto& c = cursor[static_cast<std::size_t>(w % size)];
        send_buf[static_cast<std::size_t>(c++)] = w;
        send_buf[static_cast<std::size_t>(c++)] =
            local[static_cast<std::size_t>(w)];
      }
    }
    // Every rank sends the same layout, so recv counts mirror send counts
    // of each peer — here uniform per construction.
    std::vector<int> recv_counts(static_cast<std::size_t>(size));
    std::vector<int> recv_displs(static_cast<std::size_t>(size));
    int total_recv = 0;
    for (int r = 0; r < size; ++r) {
      int mine = 0;
      for (int w = 0; w < kVocabSize; ++w)
        if (w % size == rank) mine += 2;
      recv_counts[static_cast<std::size_t>(r)] = mine;
      recv_displs[static_cast<std::size_t>(r)] = total_recv;
      total_recv += mine;
    }
    auto recv_buf =
        env.newArray<minijvm::jlong>(static_cast<std::size_t>(total_recv));
    world.allToAllv(send_buf, send_counts, send_displs, mv2j::LONG,
                    recv_buf, recv_counts, recv_displs);

    // 3. "Reduce": merge my partition.
    std::map<int, long long> merged;
    for (int i = 0; i < total_recv; i += 2) {
      merged[static_cast<int>(recv_buf[static_cast<std::size_t>(i)])] +=
          recv_buf[static_cast<std::size_t>(i + 1)];
    }

    // 4. Gather all partitions at rank 0 (gatherv: partitions differ in
    //    size when vocab % ranks != 0).
    std::vector<long long> mine_flat;
    for (const auto& [w, c] : merged) {
      mine_flat.push_back(w);
      mine_flat.push_back(c);
    }
    auto my_part = env.newArray<minijvm::jlong>(mine_flat.size());
    for (std::size_t i = 0; i < mine_flat.size(); ++i)
      my_part[i] = mine_flat[i];

    std::vector<int> part_counts(static_cast<std::size_t>(size));
    std::vector<int> part_displs(static_cast<std::size_t>(size));
    int part_total = 0;
    for (int r = 0; r < size; ++r) {
      int words = 0;
      for (int w = 0; w < kVocabSize; ++w)
        if (w % size == r) ++words;
      part_counts[static_cast<std::size_t>(r)] = 2 * words;
      part_displs[static_cast<std::size_t>(r)] = part_total;
      part_total += 2 * words;
    }
    auto all_parts =
        env.newArray<minijvm::jlong>(static_cast<std::size_t>(part_total));
    world.gatherv(my_part, static_cast<int>(mine_flat.size()), mv2j::LONG,
                  all_parts, part_counts, part_displs, 0);

    if (rank == 0) {
      std::vector<std::pair<long long, int>> ranked;  // (count, word)
      long long grand_total = 0;
      for (int i = 0; i < part_total; i += 2) {
        ranked.emplace_back(all_parts[static_cast<std::size_t>(i + 1)],
                            static_cast<int>(
                                all_parts[static_cast<std::size_t>(i)]));
        grand_total += all_parts[static_cast<std::size_t>(i + 1)];
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::cout << "total words: " << grand_total << " (expected "
                << words_per_rank * size << ")\n"
                << "top words:\n";
      for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
        std::cout << "  " << kVocabulary[ranked[i].second] << ": "
                  << ranked[i].first << "\n";
      }
      std::cout << (grand_total == words_per_rank * size
                        ? "histogram complete: PASS\n"
                        : "histogram LOST WORDS: FAIL\n");
    }
  });
  return 0;
}
